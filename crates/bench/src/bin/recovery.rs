//! Durability benchmark for the scheduler service: emit
//! `BENCH_recovery.json`.
//!
//! Three phases, each gated:
//!
//! * **wal_overhead** — the Fig. 4 workload through the threaded
//!   front-end *with the write-ahead log on* (`fsync: EveryN(32)`)
//!   and periodic snapshots. Headline: sustained decisions/sec must
//!   stay above `--min-dps` (default 2000) — durability must not eat
//!   the PR 7 throughput gate.
//! * **recovery** — recover the phase-1 directory from disk
//!   (newest snapshot + WAL replay), timed against
//!   `--max-recover-s`; the recovered run is then drained and its
//!   wall-clock-stripped `RunMetrics` must be **bit-identical** to
//!   the live run's. The recovery trace (WAL truncation, snapshot
//!   choice, replay count) lands in `target/recovery_trace.jsonl`.
//! * **chaos** — seeded kill points with post-crash file surgery
//!   (torn WAL tail, flipped tail byte, damaged newest snapshot),
//!   recovered and compared bit-for-bit against the uninterrupted
//!   run. Any divergence fails the bench.
//!
//! ```sh
//! # Full run (writes BENCH_recovery.json):
//! cargo run --release -p mlfs-bench --bin recovery
//!
//! # CI smoke: smaller trace + wall-clock ceiling:
//! cargo run --release -p mlfs-bench --bin recovery -- --smoke
//! ```
//!
//! Flags: `--scheduler MLF-H`, `--x 1` (Fig. 4 load multiplier),
//! `--tf 16` (time compression), `--seed 42`, `--queue 1024`,
//! `--min-dps 2000`, `--trials 3` (throughput trials, gate on the
//! best), `--max-recover-s 60` (recovery wall-clock ceiling),
//! `--snapshot-every 200` (rounds), `--fsync-every 32` (appends),
//! `--ceiling-s 300` (smoke wall-clock ceiling),
//! `--out BENCH_recovery.json`.

use mlfs_bench::Args;
use mlfs_service::durability::snapshot::list_snapshots;
use mlfs_service::{DurabilityConfig, FsyncPolicy, Service, SubmitError};
use mlfs_sim::engine::StepOutcome;
use mlfs_sim::experiments::{fig4, Experiment};
use obs::Counter;
use serde_json::Value;
use std::path::{Path, PathBuf};

/// Current git commit (short), or "unknown" outside a checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn stripped_metrics_json(mut m: metrics::RunMetrics) -> String {
    m.clear_wall_clock();
    serde_json::to_string(&m).expect("metrics serialize")
}

/// Flip one payload byte of the final WAL record (tail damage the
/// checksum must catch), or truncate mid-record (torn append).
fn damage_wal_tail(path: &Path, truncate: bool) -> bool {
    let Ok(bytes) = std::fs::read(path) else {
        return false;
    };
    // Walk the frames to the final record.
    let mut pos = 8usize;
    let mut last: Option<(usize, usize)> = None;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let end = pos + 8 + len;
        if end > bytes.len() {
            break;
        }
        last = Some((pos, end));
        pos = end;
    }
    let Some((start, end)) = last else {
        return false;
    };
    if truncate {
        let Ok(f) = std::fs::OpenOptions::new().write(true).open(path) else {
            return false;
        };
        f.set_len((start + (end - start) / 2) as u64).is_ok()
    } else {
        let mut bytes = bytes;
        bytes[start + 8 + (end - start - 8) / 2] ^= 0xFF;
        std::fs::write(path, bytes).is_ok()
    }
}

/// Flip a body byte of the newest complete snapshot, if any.
fn damage_newest_snapshot(dir: &Path) -> bool {
    let _ = std::fs::write(dir.join("snap-424242.json.tmp"), b"crash mid-snapshot");
    let Ok(snaps) = list_snapshots(dir) else {
        return false;
    };
    let Some((_, newest)) = snaps.first() else {
        return false;
    };
    let Ok(mut bytes) = std::fs::read(newest) else {
        return false;
    };
    let n = bytes.len();
    bytes[n - 2] ^= 0xFF;
    std::fs::write(newest, bytes).is_ok()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target").join(format!("bench-recovery-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let scheduler = args.get("scheduler").unwrap_or("MLF-H").to_string();
    let x = args.f64("x", if smoke { 0.5 } else { 1.0 });
    let tf = args.f64("tf", 16.0);
    let seed = args.u64("seed", 42);
    let queue_cap = args.u64("queue", 1024) as usize;
    let min_dps = args.f64("min-dps", 2000.0);
    let max_recover_s = args.f64("max-recover-s", 60.0);
    let snapshot_every = args.u64("snapshot-every", 200);
    let fsync_every = args.u64("fsync-every", 32) as u32;
    let ceiling_s = args.f64("ceiling-s", 300.0);
    let default_out = if smoke {
        "target/BENCH_recovery.smoke.json"
    } else {
        "BENCH_recovery.json"
    };
    let out = args.get("out").unwrap_or(default_out).to_string();

    let e = fig4(x, tf, seed);
    let specs = e.jobs();
    let jobs = specs.len();
    let bench_t0 = std::time::Instant::now();

    let meta = Value::Map(vec![
        ("before_commit".into(), Value::Str(git_commit())),
        (
            "after_commit".into(),
            Value::Str(args.get("after-commit").unwrap_or("worktree").into()),
        ),
        ("scheduler".into(), Value::Str(scheduler.clone())),
        ("figure".into(), Value::Str("fig4".into())),
        ("x".into(), Value::F64(x)),
        ("time_factor".into(), Value::F64(tf)),
        ("seed".into(), Value::U64(seed)),
        ("jobs".into(), Value::U64(jobs as u64)),
        ("fsync_every".into(), Value::U64(fsync_every as u64)),
        ("snapshot_every_rounds".into(), Value::U64(snapshot_every)),
    ]);
    let mut runs: Vec<Value> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // ---- Phase 1: throughput with the WAL on. ---------------------
    let dir = fresh_dir("live");
    let trace_path = PathBuf::from("target").join("recovery_trace.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.fsync = FsyncPolicy::EveryN(fsync_every);
    dcfg.snapshot_every_rounds = snapshot_every;
    dcfg.keep_snapshots = 3;
    dcfg.trace = obs::TraceConfig::Jsonl {
        path: trace_path.clone(),
    };
    let trials = args.u64("trials", 3).max(1);
    eprintln!(
        "[recovery] wal_overhead phase: {jobs} jobs, scheduler {scheduler}, \
         fsync every {fsync_every} appends, snapshot every {snapshot_every} rounds, \
         best of {trials} trials..."
    );
    // The full run lasts well under a second, so one descheduling
    // blip swings the number — run a few trials and gate on the
    // best. The last trial's directory feeds the recovery phase.
    let mut best_dps = 0.0f64;
    let mut trial_dps: Vec<Value> = Vec::new();
    let mut last: Option<(mlfs_service::ServiceReport, f64)> = None;
    for _ in 0..trials {
        let _ = std::fs::remove_dir_all(&dir);
        let svc = match Service::builder(e.sim.clone())
            .durability(dcfg.clone())
            .build(e.scheduler(&scheduler, seed.wrapping_add(7)))
        {
            Ok(svc) => svc,
            Err(err) => {
                eprintln!("[recovery] durable service failed to open: {err}");
                std::process::exit(1);
            }
        };
        let handle = svc.spawn(queue_cap);
        let t0 = std::time::Instant::now();
        for spec in specs.clone() {
            let mut spec = spec;
            loop {
                match handle.submit(spec) {
                    Ok(()) => break,
                    Err(SubmitError::Backpressure(s)) => {
                        spec = s;
                        std::thread::yield_now();
                    }
                    Err(SubmitError::Closed(_)) => {
                        eprintln!("[recovery] worker closed early");
                        std::process::exit(1);
                    }
                }
            }
        }
        let report = handle.finish();
        let wall = t0.elapsed().as_secs_f64();
        if report.worker_panicked {
            failures.push("wal_overhead worker panicked".into());
        }
        if let Some(err) = &report.durability_error {
            failures.push(format!("durability error during live run: {err}"));
        }
        let dps = report.metrics.rounds as f64 / wall.max(1e-9);
        best_dps = best_dps.max(dps);
        trial_dps.push(Value::F64(dps));
        last = Some((report, wall));
    }
    let (report, wall) = last.expect("trials >= 1");
    let rounds = report.metrics.rounds;
    let dur = report.durability.clone().unwrap_or_default();
    let wal_appends = dur.count(Counter::WalAppends);
    let wal_fsyncs = dur.count(Counter::WalFsyncs);
    let snapshot_writes = dur.count(Counter::SnapshotWrites);
    let live_metrics = stripped_metrics_json(report.metrics);
    eprintln!(
        "[recovery]   {wall:.1}s wall (last trial), {rounds} rounds, best {best_dps:.0} \
         decisions/s, {wal_appends} WAL appends, {wal_fsyncs} fsyncs, \
         {snapshot_writes} snapshots"
    );
    runs.push(Value::Map(vec![
        ("phase".into(), Value::Str("wal_overhead".into())),
        ("jobs_accepted".into(), Value::U64(report.stats.accepted)),
        ("rounds".into(), Value::U64(rounds)),
        ("wall_s".into(), Value::F64(wall)),
        ("decisions_per_sec".into(), Value::F64(best_dps)),
        ("trial_decisions_per_sec".into(), Value::Seq(trial_dps)),
        ("wal_appends".into(), Value::U64(wal_appends)),
        ("wal_fsyncs".into(), Value::U64(wal_fsyncs)),
        ("snapshot_writes".into(), Value::U64(snapshot_writes)),
    ]));

    // ---- Phase 2: timed recovery of the full run from disk. -------
    eprintln!("[recovery] recovery phase: rebuilding the {jobs}-job run from {dir:?}...");
    // The JSONL sink truncates on open, so the recovery trace gets
    // its own file — the live run's append/snapshot trace survives.
    let mut rdcfg = dcfg.clone();
    rdcfg.trace = obs::TraceConfig::Jsonl {
        path: PathBuf::from("target").join("recovery_trace.recovered.jsonl"),
    };
    let t0 = std::time::Instant::now();
    let recovered = Service::builder(e.sim.clone())
        .durability(rdcfg)
        .recover(e.scheduler(&scheduler, seed.wrapping_add(7)));
    let (mut svc, rec_report) = match recovered {
        Ok(pair) => pair,
        Err(err) => {
            eprintln!("[recovery] recovery failed: {err}");
            std::process::exit(1);
        }
    };
    let recover_wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "[recovery]   recovered in {recover_wall:.2}s: snapshot {:?}, {} WAL records replayed, \
         resumed at round {}",
        rec_report.snapshot_round, rec_report.wal_records_replayed, rec_report.resumed_round
    );
    if recover_wall > max_recover_s {
        failures.push(format!(
            "recovery took {recover_wall:.1}s, over the {max_recover_s:.0}s ceiling"
        ));
    }
    // Drain the recovered service: its final metrics must be the
    // live run's, bit for bit (wall-clock stripped).
    match svc.run_until_drained() {
        StepOutcome::Drained | StepOutcome::Horizon => {}
        StepOutcome::Continue => unreachable!("run_until_drained only stops on Drained/Horizon"),
    }
    let recovered_metrics = stripped_metrics_json(svc.finish());
    let identical = recovered_metrics == live_metrics;
    if !identical {
        failures.push("recovered run is NOT bit-identical to the live run".into());
    }
    eprintln!("[recovery]   drained after recovery: bit-identical = {identical}");
    runs.push(Value::Map(vec![
        ("phase".into(), Value::Str("recovery".into())),
        ("recover_wall_s".into(), Value::F64(recover_wall)),
        (
            "snapshot_round".into(),
            Value::U64(rec_report.snapshot_round.unwrap_or(0)),
        ),
        (
            "wal_records_replayed".into(),
            Value::U64(rec_report.wal_records_replayed),
        ),
        ("resumed_round".into(), Value::U64(rec_report.resumed_round)),
        ("bit_identical".into(), Value::Bool(identical)),
    ]));

    // ---- Phase 3: chaos smoke — kill, damage, recover, compare. ---
    let chaos_jobs = args.u64("chaos-jobs", 8) as usize;
    let mut ce = fig4(0.25, 64.0, 7);
    ce.trace.jobs = chaos_jobs;
    let chaos_schedulers: &[&str] = if smoke {
        &["MLF-H"]
    } else {
        &["MLF-H", "MLFS", "Tiresias"]
    };
    let t0 = std::time::Instant::now();
    let mut chaos_runs = 0u64;
    let mut chaos_identical = 0u64;
    for name in chaos_schedulers {
        let (want, total_rounds) = chaos_reference(&ce, name);
        for (i, frac) in [0.2f64, 0.5, 0.8, 0.95].iter().enumerate() {
            let kill_ticks = ((total_rounds as f64 * frac) as u64).max(1);
            let got = chaos_run(&ce, name, kill_ticks, i % 3);
            chaos_runs += 1;
            if got == want {
                chaos_identical += 1;
            } else {
                failures.push(format!(
                    "chaos {name} kill@{kill_ticks} surgery {} diverged",
                    i % 3
                ));
            }
        }
    }
    let chaos_wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "[recovery] chaos phase: {chaos_identical}/{chaos_runs} recoveries bit-identical \
         in {chaos_wall:.1}s"
    );
    runs.push(Value::Map(vec![
        ("phase".into(), Value::Str("chaos".into())),
        ("kill_points".into(), Value::U64(chaos_runs)),
        ("bit_identical".into(), Value::U64(chaos_identical)),
        ("wall_s".into(), Value::F64(chaos_wall)),
    ]));

    let root = Value::Map(vec![
        ("meta".into(), meta),
        ("runs".into(), Value::Seq(runs)),
    ]);
    if let Err(err) = std::fs::write(&out, serde_json::value_to_string_pretty(&root) + "\n") {
        eprintln!("failed to write {out}: {err}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    // ---- Gates. ---------------------------------------------------
    if best_dps < min_dps {
        failures.push(format!(
            "decisions/sec {best_dps:.0} below floor {min_dps:.0} with the WAL on"
        ));
    }
    let total_wall = bench_t0.elapsed().as_secs_f64();
    if smoke && total_wall > ceiling_s {
        failures.push(format!(
            "wall clock {total_wall:.1}s over smoke ceiling {ceiling_s:.0}s"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[recovery] GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// Uninterrupted sync reference: metrics JSON + total rounds.
fn chaos_reference(e: &Experiment, name: &str) -> (String, u64) {
    let mut svc = Service::new(e.sim.clone(), e.scheduler(name, 7), None);
    for s in e.jobs() {
        assert!(svc.submit(s).accepted());
    }
    let _ = svc.run_until_drained();
    let rounds = svc.rounds();
    (stripped_metrics_json(svc.finish()), rounds)
}

/// Kill a durable run after `kill_ticks` rounds, apply surgery
/// flavor, recover, resume, return the final metrics JSON.
fn chaos_run(e: &Experiment, name: &str, kill_ticks: u64, surgery: usize) -> String {
    let dir = fresh_dir("chaos");
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.fsync = FsyncPolicy::EveryN(4);
    dcfg.snapshot_every_rounds = 4;
    dcfg.keep_snapshots = 2;
    let mut svc = Service::builder(e.sim.clone())
        .durability(dcfg.clone())
        .build(e.scheduler(name, 7))
        .expect("durable service builds");
    let specs = e.jobs();
    for s in specs.clone() {
        assert!(svc.submit(s).accepted());
    }
    for _ in 0..kill_ticks {
        if svc.tick() != StepOutcome::Continue {
            break;
        }
    }
    drop(svc); // the crash

    match surgery {
        0 => {
            damage_wal_tail(&dir.join("wal.log"), true);
        }
        1 => {
            damage_wal_tail(&dir.join("wal.log"), false);
        }
        _ => {
            damage_newest_snapshot(&dir);
        }
    }

    let (mut svc, report) = Service::builder(e.sim.clone())
        .durability(dcfg)
        .recover(e.scheduler(name, 7))
        .expect("recovery succeeds");
    // Re-submit anything the damaged tail lost (acceptance order ==
    // submission order).
    for s in specs
        .into_iter()
        .skip(usize::try_from(report.resumed_accepted).expect("fits"))
    {
        assert!(svc.submit(s).accepted());
    }
    let _ = svc.run_until_drained();
    let m = stripped_metrics_json(svc.finish());
    let _ = std::fs::remove_dir_all(&dir);
    m
}
