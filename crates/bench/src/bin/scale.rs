//! Paper-scale engine benchmark: emit `BENCH_scale.json`.
//!
//! Runs the Fig. 5 Philly workload under MLF-H at several `--scale`
//! points with both simulation engines (`naive` reference vs the
//! `event`-driven calendar engine) and records simulated jobs per
//! wall-clock second. This is the perf gate for the event engine: the
//! checked-in `BENCH_scale.json` must show a ≥5× wall-clock win at 1×
//! paper scale (550 servers, 117 325 jobs), and the 10× point must
//! complete.
//!
//! ```sh
//! # Full sweep (hours at 1×/10× on a small machine):
//! cargo run --release -p mlfs-bench --bin scale
//!
//! # CI smoke: one event-engine run at --scale 0.05 with a wall-clock
//! # ceiling; exits non-zero when the ceiling is blown.
//! cargo run --release -p mlfs-bench --bin scale -- --smoke [--ceiling-s 600]
//! ```
//!
//! Flags: `--points 0.02:both,1:both,10:event` (scale:engine list;
//! engine ∈ naive|event|both), `--x 1` (Fig. 5 load multiplier),
//! `--tf 40` (time compression), `--seed 42`, `--out BENCH_scale.json`.
//! The JSON is rewritten after every completed run, so a partial sweep
//! still leaves usable numbers on disk.

use mlfs_bench::Args;
use mlfs_sim::engine::EngineMode;
use mlfs_sim::experiments::fig5;
use serde_json::Value;

/// One benchmark point: Fig. 5 at `scale` under `engine`.
struct Point {
    scale: f64,
    engine: EngineMode,
}

fn engine_name(mode: EngineMode) -> &'static str {
    match mode {
        EngineMode::Naive => "naive",
        EngineMode::EventDriven => "event",
    }
}

/// Parse `0.02:both,1:event` into points (both → naive then event).
fn parse_points(spec: &str) -> Vec<Point> {
    let mut points = Vec::new();
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (scale_s, eng_s) = part.split_once(':').unwrap_or((part, "both"));
        let Ok(scale) = scale_s.trim().parse::<f64>() else {
            eprintln!("skipping malformed point {part:?}");
            continue;
        };
        match eng_s.trim() {
            "naive" => points.push(Point {
                scale,
                engine: EngineMode::Naive,
            }),
            "event" => points.push(Point {
                scale,
                engine: EngineMode::EventDriven,
            }),
            _ => {
                points.push(Point {
                    scale,
                    engine: EngineMode::Naive,
                });
                points.push(Point {
                    scale,
                    engine: EngineMode::EventDriven,
                });
            }
        }
    }
    points
}

/// Current git commit (short), or "unknown" outside a checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let x = args.f64("x", 1.0);
    let tf = args.f64("tf", 40.0);
    let seed = args.u64("seed", 42);
    let ceiling_s = args.f64("ceiling-s", 600.0);
    let default_out = if smoke {
        "target/BENCH_scale.smoke.json"
    } else {
        "BENCH_scale.json"
    };
    let out = args.get("out").unwrap_or(default_out).to_string();

    let points = if smoke {
        vec![Point {
            scale: args.f64("scale", 0.05),
            engine: EngineMode::EventDriven,
        }]
    } else {
        parse_points(args.get("points").unwrap_or("0.02:both,1:both,10:event"))
    };

    // The bench measures the working tree: `before_commit` is the
    // commit the tree is based on; `after_commit` is the commit that
    // will contain the measured change, stamped once it exists
    // (`--after-commit <sha>`, or edited post-commit).
    let meta = Value::Map(vec![
        ("before_commit".into(), Value::Str(git_commit())),
        (
            "after_commit".into(),
            Value::Str(args.get("after-commit").unwrap_or("worktree").into()),
        ),
        ("scheduler".into(), Value::Str("MLF-H".into())),
        ("figure".into(), Value::Str("fig5".into())),
        ("x".into(), Value::F64(x)),
        ("time_factor".into(), Value::F64(tf)),
        ("seed".into(), Value::U64(seed)),
    ]);

    let mut runs: Vec<Value> = Vec::new();
    // wall_s of the naive run at each scale, for the speedup column.
    let mut naive_wall: Vec<(f64, f64)> = Vec::new();
    let mut blown = false;

    for p in &points {
        let mut e = fig5(x, p.scale, tf, seed);
        e.sim.engine = p.engine;
        let servers = ((550.0 * p.scale).round() as usize).max(1);
        eprintln!(
            "[scale] {} engine, scale {} ({} servers, {} jobs)...",
            engine_name(p.engine),
            p.scale,
            servers,
            e.trace.jobs
        );
        let mut s = e.scheduler("MLF-H", seed.wrapping_add(7));
        let t0 = std::time::Instant::now();
        let m = e.run(s.as_mut());
        let wall = t0.elapsed().as_secs_f64();
        let jobs_per_sec = m.jobs_submitted as f64 / wall.max(1e-9);
        eprintln!(
            "[scale]   {:.1}s wall, {} rounds, {:.1} jobs/s, {} finished",
            wall,
            m.rounds,
            jobs_per_sec,
            m.jobs.len()
        );

        if p.engine == EngineMode::Naive {
            naive_wall.push((p.scale, wall));
        }
        let speedup = (p.engine == EngineMode::EventDriven)
            .then(|| {
                naive_wall
                    .iter()
                    .find(|(sc, _)| *sc == p.scale)
                    .map(|(_, nw)| Value::F64(nw / wall.max(1e-9)))
            })
            .flatten()
            .unwrap_or(Value::Null);

        runs.push(Value::Map(vec![
            ("scale".into(), Value::F64(p.scale)),
            ("engine".into(), Value::Str(engine_name(p.engine).into())),
            ("servers".into(), Value::U64(servers as u64)),
            ("jobs".into(), Value::U64(m.jobs_submitted as u64)),
            ("rounds".into(), Value::U64(m.rounds)),
            ("wall_s".into(), Value::F64(wall)),
            ("jobs_per_sec".into(), Value::F64(jobs_per_sec)),
            ("speedup_vs_naive".into(), speedup),
        ]));

        // Rewrite after every run so a partial sweep is still useful.
        let root = Value::Map(vec![
            ("meta".into(), meta.clone()),
            ("runs".into(), Value::Seq(runs.clone())),
        ]);
        if let Err(err) = std::fs::write(&out, serde_json::value_to_string_pretty(&root) + "\n") {
            eprintln!("failed to write {out}: {err}");
        }

        if smoke && wall > ceiling_s {
            eprintln!("[scale] SMOKE FAIL: {wall:.1}s exceeds ceiling {ceiling_s:.0}s");
            blown = true;
        }
    }

    println!("wrote {out}");
    if blown {
        std::process::exit(1);
    }
}
