//! Regenerate **Figure 6** (urgency and deadline consideration):
//!
//! * deadline guarantee ratio of *urgent* jobs (urgency > 8) with and
//!   without the urgency coefficient in Eq. 2 — paper: +22–30%;
//! * deadline guarantee ratio of *all* jobs with and without the
//!   deadline term in Eq. 4 — paper: +13–25%.
//!
//! ```sh
//! cargo run --release -p mlfs-bench --bin fig6 -- [--xs 0.25,0.5,1] [--tf 16] [--seed 42]
//! ```

use metrics::{RunMetrics, Table};
use mlfs::Params;
use mlfs_bench::Args;
use mlfs_sim::experiments::ablation;

fn urgent_deadline_ratio(m: &RunMetrics) -> f64 {
    let urgent: Vec<_> = m.jobs.iter().filter(|j| j.urgency > 8).collect();
    if urgent.is_empty() {
        return 0.0;
    }
    urgent.iter().filter(|j| j.met_deadline).count() as f64 / urgent.len() as f64
}

fn main() {
    let args = Args::parse();
    let xs = if args.has("full") {
        vec![0.25, 0.5, 1.0, 2.0, 3.0]
    } else {
        args.f64_list("xs", &[0.25, 0.5, 1.0])
    };
    let tf = args.f64("tf", 16.0);
    let seed = args.u64("seed", 42);

    println!("Figure 6 — urgency and deadline consideration (MLF-H ablations)");
    let variants: [(&str, Params); 3] = [
        ("baseline MLF-H", Params::default()),
        (
            "w/o urgency",
            Params {
                use_urgency: false,
                ..Params::default()
            },
        ),
        (
            "w/o deadline",
            Params {
                use_deadline: false,
                ..Params::default()
            },
        ),
    ];

    let mut urgent_t = Table::new(&["jobs", "w/ urgency", "w/o urgency", "improvement"]);
    let mut all_t = Table::new(&["jobs", "w/ deadline", "w/o deadline", "improvement"]);
    for &x in &xs {
        let e = ablation("fig6", x, tf, seed);
        let mut runs = Vec::new();
        for (name, p) in &variants {
            eprintln!("[run] {} x={}...", name, x);
            let mut s = e.scheduler_with_params("MLF-H", seed, *p);
            runs.push(e.run(s.as_mut()));
        }
        let (with, wo_urg, wo_dl) = (&runs[0], &runs[1], &runs[2]);
        let (u_w, u_wo) = (urgent_deadline_ratio(with), urgent_deadline_ratio(wo_urg));
        urgent_t.row(vec![
            format!("{}", e.trace.jobs),
            format!("{u_w:.3}"),
            format!("{u_wo:.3}"),
            format!("{:+.1}%", 100.0 * (u_w - u_wo) / u_wo.max(1e-9)),
        ]);
        let (d_w, d_wo) = (with.deadline_ratio(), wo_dl.deadline_ratio());
        all_t.row(vec![
            format!("{}", e.trace.jobs),
            format!("{d_w:.3}"),
            format!("{d_wo:.3}"),
            format!("{:+.1}%", 100.0 * (d_w - d_wo) / d_wo.max(1e-9)),
        ]);
    }
    println!("\n== urgent jobs' deadline guarantee ratio (urgency > 8) ==");
    println!("{urgent_t}");
    println!("(paper: urgency consideration improves this by 22-30%)");
    println!("\n== all jobs' deadline guarantee ratio ==");
    println!("{all_t}");
    println!("(paper: deadline consideration improves this by 13-25%)");
}
