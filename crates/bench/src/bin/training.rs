//! The learning loop, end to end: emit `BENCH_training.json`.
//!
//! Exercises the full DL2-style offline-training pipeline
//! (docs/TRAINING.md) and gates its three load-bearing claims:
//!
//! 1. **record → dataset → warm-start** — a traced MLF-RL run in full
//!    imitation mode writes `decision_example` events to JSONL; the
//!    trace is replayed into a supervised dataset
//!    (`rl::DatasetBuilder`) and two students are pretrained on it:
//!    the production warm start (full features) and a hint-masked
//!    stale-policy proxy for the drift cell. *Gate:* both pretraining
//!    losses strictly decrease.
//! 2. **drift retraining** — on a drifting workload (`experiments::
//!    drift`: narrow phase 1, then out-of-distribution wide jobs) the
//!    periodically-retrained policy must strictly beat the frozen
//!    warm-started policy on mean JCT (stranded jobs charged at the
//!    horizon), and the drift monitor must actually fire.
//! 3. **warm vs cold** — warm-started MLF-RL must trip the §3.4
//!    return-EMA convergence detector in fewer rounds than the
//!    cold-start pipeline (online imitation bootstrap then
//!    REINFORCE), without settling at a materially lower return.
//!
//! ```sh
//! # Full run (writes BENCH_training.json):
//! cargo run --release -p mlfs-bench --bin training
//!
//! # CI smoke: smaller workload, same gates, exits non-zero on any
//! # gate failure:
//! cargo run --release -p mlfs-bench --bin training -- --smoke
//! ```
//!
//! Flags: `--x 1.0` (Fig. 4 load multiplier), `--tf 8` (time
//! compression; smoke uses 16), `--seed 42`, `--epochs 8` (pretrain
//! epochs), `--steps 0` (SGD updates per epoch, 0 = full pass),
//! `--out BENCH_training.json`, `--trace <path>` (recorded trace
//! location, default under `target/`), `--dump-rewards <csv>`
//! (per-round reward + return-EMA curves of the convergence cell).

use mlfs::features::{FEATURE_DIM, HEURISTIC_PICK_DIM};
use mlfs::{DriftRetrainConfig, MlfRlConfig, Params, Scheduler};
use mlfs_bench::Args;
use mlfs_sim::experiments::{drift, drift_phase1};
use serde_json::Value;

/// Current git commit (short), or "unknown" outside a checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Scheduler wrapper that logs the Eq. 7 weighted reward of every
/// round and the round at which the wrapped MLF-RL's §3.4 convergence
/// detector (return-EMA stability) first fires, while delegating
/// everything else. Observation only: it cannot change a decision.
struct RewardProbe {
    inner: mlfs::Mlfs,
    beta: [f64; 5],
    rewards: Vec<f64>,
    emas: Vec<Option<f64>>,
    converged_at: Option<usize>,
}

impl Scheduler for RewardProbe {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn schedule(&mut self, ctx: &mlfs::SchedulerContext<'_>) -> Vec<mlfs::Action> {
        self.inner.schedule(ctx)
    }
    fn schedule_stream(
        &mut self,
        ctx: &mlfs::SchedulerContext<'_>,
        arrived: &[cluster::JobId],
    ) -> Vec<mlfs::Action> {
        self.inner.schedule_stream(ctx, arrived)
    }
    fn observe_reward(&mut self, reward: &mlfs::RewardComponents) {
        self.rewards.push(reward.weighted(&self.beta));
        self.inner.observe_reward(reward);
        if let Some(rl) = self.inner.rl_mut() {
            self.emas.push(rl.convergence_ema());
            if self.converged_at.is_none() && rl.is_converged() {
                self.converged_at = Some(self.rewards.len());
            }
        }
    }
    fn attach_tracer(&mut self, tracer: std::sync::Arc<obs::Tracer>) {
        self.inner.attach_tracer(tracer);
    }
    fn export_state(&self) -> Option<String> {
        self.inner.export_state()
    }
    fn import_state(&mut self, state: &str) -> bool {
        self.inner.import_state(state)
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    // Full load (x=1): the drift cell needs enough phase-2 volume for
    // stranded wide jobs to move the mean, and the convergence cell
    // needs contention; smoke keeps the load and only compresses time.
    let x = args.f64("x", 1.0);
    let tf = args.f64("tf", if smoke { 16.0 } else { 8.0 });
    let seed = args.u64("seed", 42);
    let epochs = args.u64("epochs", 8) as usize;
    let steps = args.u64("steps", 0) as usize;
    let default_out = if smoke {
        "target/BENCH_training.smoke.json"
    } else {
        "BENCH_training.json"
    };
    let out = args.get("out").unwrap_or(default_out).to_string();
    let trace_path = args
        .get("trace")
        .unwrap_or("target/training_teacher.jsonl")
        .to_string();

    let params = Params::default();
    let meta = Value::Map(vec![
        ("before_commit".into(), Value::Str(git_commit())),
        (
            "after_commit".into(),
            Value::Str(args.get("after-commit").unwrap_or("worktree").into()),
        ),
        ("figure".into(), Value::Str("training".into())),
        ("x".into(), Value::F64(x)),
        ("time_factor".into(), Value::F64(tf)),
        ("seed".into(), Value::U64(seed)),
        ("pretrain_epochs".into(), Value::U64(epochs as u64)),
    ]);
    let mut runs: Vec<Value> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // ---- Cell 1: record a teacher trace. --------------------------
    // MLF-RL in full-imitation mode acts exactly like MLF-H while
    // emitting one decision_example per teacher decision.
    eprintln!("[training] recording teacher trace (x={x}, tf={tf})...");
    let mut record_exp = drift_phase1(x, tf, seed);
    record_exp.sim.trace = obs::TraceConfig::Jsonl {
        path: std::path::PathBuf::from(&trace_path),
    };
    let mut teacher = mlfs::Mlfs::rl(
        params,
        MlfRlConfig {
            imitation_rounds: usize::MAX / 2,
            explore: false,
            seed,
            ..Default::default()
        },
    );
    let teacher_metrics = record_exp.run(&mut teacher);
    let trace_bytes = std::fs::metadata(&trace_path).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "[training]   {} rounds, {:.1} MB trace",
        teacher_metrics.rounds,
        trace_bytes as f64 / 1e6
    );

    // ---- Cell 2: replay the trace into a dataset. -----------------
    let mut builder = rl::DatasetBuilder::new(FEATURE_DIM).source("imitation");
    let reader = match obs::TraceReader::open(std::path::Path::new(&trace_path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[training] cannot open recorded trace {trace_path}: {e}");
            std::process::exit(1);
        }
    };
    builder.ingest_all(reader);
    let rejected = builder.rejected();
    let dataset = builder.finish();
    let fingerprint = dataset.fingerprint();
    eprintln!(
        "[training]   dataset: {} examples, {} rejected, fingerprint {fingerprint:016x}",
        dataset.len(),
        rejected
    );
    if dataset.is_empty() {
        failures.push("replayed dataset is empty".into());
    }
    runs.push(Value::Map(vec![
        ("phase".into(), Value::Str("record_replay".into())),
        ("teacher_rounds".into(), Value::U64(teacher_metrics.rounds)),
        ("trace_bytes".into(), Value::U64(trace_bytes)),
        ("examples".into(), Value::U64(dataset.len() as u64)),
        ("rejected".into(), Value::U64(rejected)),
        (
            "fingerprint".into(),
            Value::Str(format!("{fingerprint:016x}")),
        ),
    ]));

    // ---- Cell 3: warm-start pretraining. --------------------------
    // Two students from the same dataset:
    //
    // * `warm_policy` — the production warm start, trained on the full
    //   feature vector. Serving-time features include MLF-H's
    //   heuristic-pick flag, so this student converges to a faithful
    //   teacher clone — exactly what the online imitation phase would
    //   have produced, minus the online rounds.
    // * `drift_policy` — the drift cell's stale-policy proxy, trained
    //   with the teacher hint masked so it learns RIAL's rule from raw
    //   cluster state. Its fit is genuinely specific to the phase-1
    //   distribution it trained on — which is what lets the drift cell
    //   below measure staleness at all (a hint-following clone would
    //   ride the teacher through any shift).
    let pre_cfg = rl::PretrainConfig {
        hidden: vec![64, 32],
        epochs,
        batch: 64,
        lr: 1e-2,
        seed: seed.wrapping_add(0xBEEF),
        steps_per_epoch: if steps == 0 { None } else { Some(steps) },
        mask_dims: Vec::new(),
    };
    let (warm_policy, report) = rl::warm_start(&dataset, &pre_cfg);
    let masked_cfg = rl::PretrainConfig {
        mask_dims: vec![HEURISTIC_PICK_DIM],
        ..pre_cfg.clone()
    };
    let (drift_policy, masked_report) = rl::warm_start(&dataset, &masked_cfg);
    let round3 = |ls: &[f64]| {
        ls.iter()
            .map(|l| (l * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    };
    eprintln!(
        "[training]   pretrain losses {:?} agreement {:.3} (hint-masked: {:?} agreement {:.3})",
        round3(&report.epoch_losses),
        report.final_agreement,
        round3(&masked_report.epoch_losses),
        masked_report.final_agreement
    );
    for (label, r) in [("", &report), ("hint-masked ", &masked_report)] {
        let (first_loss, last_loss) = (
            r.epoch_losses.first().copied().unwrap_or(0.0),
            r.epoch_losses.last().copied().unwrap_or(0.0),
        );
        // NaN losses must fail the gate too, hence partial_cmp.
        if last_loss.partial_cmp(&first_loss) != Some(std::cmp::Ordering::Less) {
            failures.push(format!(
                "{label}pretrain loss did not decrease: first {first_loss} last {last_loss}"
            ));
        }
    }
    let losses = |r: &rl::PretrainReport| {
        Value::Seq(r.epoch_losses.iter().map(|l| Value::F64(*l)).collect())
    };
    runs.push(Value::Map(vec![
        ("phase".into(), Value::Str("warm_start".into())),
        ("epoch_losses".into(), losses(&report)),
        ("final_agreement".into(), Value::F64(report.final_agreement)),
        ("masked_epoch_losses".into(), losses(&masked_report)),
        (
            "masked_final_agreement".into(),
            Value::F64(masked_report.final_agreement),
        ),
        ("examples".into(), Value::U64(report.examples as u64)),
    ]));

    // ---- Cell 4: frozen vs retrained on the drifting workload. ----
    let (drift_exp, drift_jobs, boundary) = drift(x, tf, seed.wrapping_add(3));
    eprintln!(
        "[training] drift eval: {} jobs, phase boundary at {:.0} min...",
        drift_jobs.len(),
        boundary.as_mins_f64()
    );
    let phase_jct = |m: &metrics::RunMetrics, lo: f64, hi: f64| {
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut unfinished = 0usize;
        for j in &m.jobs {
            let a = j.arrival.as_mins_f64();
            if a < lo || a >= hi {
                continue;
            }
            match j.jct_mins {
                Some(jct) => {
                    sum += jct;
                    n += 1;
                }
                None => unfinished += 1,
            }
        }
        (if n == 0 { 0.0 } else { sum / n as f64 }, n, unfinished)
    };
    let eval = |label: &str, cfg: MlfRlConfig, policy: rl::ScoringPolicy| {
        let mut s = mlfs::Mlfs::rl(params, cfg);
        if let Some(inner) = s.rl_mut() {
            inner.import_policy(policy);
        }
        let m = mlfs_sim::engine::run(drift_exp.sim.clone(), drift_jobs.clone(), &mut s);
        let retrains = s.rl_mut().map(|r| r.retrains()).unwrap_or(0);
        let b = boundary.as_mins_f64();
        let (p1, n1, u1) = phase_jct(&m, 0.0, b);
        let (p2, n2, u2) = phase_jct(&m, b, f64::INFINITY);
        let wait_p2: f64 = m
            .jobs
            .iter()
            .filter(|j| j.arrival.as_mins_f64() >= b)
            .map(|j| j.waiting_secs / 60.0)
            .sum::<f64>()
            / n2.max(1) as f64;
        eprintln!(
            "[training]   {label}: mean JCT {:.1} min (p1 {p1:.1} n={n1} u={u1} | p2 {p2:.1} n={n2} u={u2} wait {wait_p2:.1}m), goodput {:.3}, deadlines {:.3}, place {} migr {} evict {}, retrains {retrains}",
            m.avg_jct_mins(),
            m.goodput_ratio(),
            m.deadline_ratio(),
            m.telemetry.placements,
            m.telemetry.migrations,
            m.telemetry.evictions,
        );
        (m, retrains)
    };
    let (frozen, _) = eval(
        "frozen   ",
        MlfRlConfig {
            imitation_rounds: 0,
            explore: false,
            online_training: false,
            seed,
            ..Default::default()
        },
        drift_policy.clone(),
    );
    let (retrained, retrains) = eval(
        "retrained",
        MlfRlConfig {
            imitation_rounds: 0,
            explore: false,
            online_training: true,
            drift: Some(DriftRetrainConfig::default()),
            // Isolate the retraining mechanism: no REINFORCE episodes,
            // only drift-triggered re-imitation windows.
            train_interval: usize::MAX,
            seed,
            ..Default::default()
        },
        drift_policy.clone(),
    );
    // Gate metric: mean JCT with stranded jobs charged at the horizon
    // (a policy must not look better by never finishing work — plain
    // `avg_jct_mins` averages finished jobs only).
    let horizon_mins = drift_exp.sim.max_time.as_mins_f64();
    let effective_jct = |m: &metrics::RunMetrics| {
        let total: f64 = m
            .jobs
            .iter()
            .map(|j| {
                j.jct_mins
                    .unwrap_or_else(|| horizon_mins - j.arrival.as_mins_f64())
            })
            .sum();
        total / m.jobs.len().max(1) as f64
    };
    let (frozen_jct, retrained_jct) = (effective_jct(&frozen), effective_jct(&retrained));
    // NaN JCTs must fail the gate too, hence partial_cmp.
    if retrained_jct.partial_cmp(&frozen_jct) != Some(std::cmp::Ordering::Less) {
        failures.push(format!(
            "retrained policy does not beat frozen on mean JCT: {retrained_jct:.2} vs {frozen_jct:.2} min"
        ));
    }
    if retrains == 0 {
        failures.push("drift monitor never triggered a retraining window".into());
    }
    runs.push(Value::Map(vec![
        ("phase".into(), Value::Str("drift_eval".into())),
        ("jobs".into(), Value::U64(drift_jobs.len() as u64)),
        ("boundary_min".into(), Value::F64(boundary.as_mins_f64())),
        ("frozen_jct_min".into(), Value::F64(frozen_jct)),
        ("retrained_jct_min".into(), Value::F64(retrained_jct)),
        (
            "frozen_finished_jct_min".into(),
            Value::F64(frozen.avg_jct_mins()),
        ),
        (
            "retrained_finished_jct_min".into(),
            Value::F64(retrained.avg_jct_mins()),
        ),
        ("frozen_goodput".into(), Value::F64(frozen.goodput_ratio())),
        (
            "retrained_goodput".into(),
            Value::F64(retrained.goodput_ratio()),
        ),
        (
            "frozen_deadline_ratio".into(),
            Value::F64(frozen.deadline_ratio()),
        ),
        (
            "retrained_deadline_ratio".into(),
            Value::F64(retrained.deadline_ratio()),
        ),
        ("retrain_windows".into(), Value::U64(retrains as u64)),
    ]));

    // ---- Cell 5: warm-start vs cold-start convergence. ------------
    // Cold start is the standard online pipeline: imitate MLF-H for
    // `imitation_rounds`, then switch to REINFORCE. Warm start imports
    // the offline-pretrained policy and enters the RL phase at round
    // zero — the offline pipeline's whole value proposition is
    // deleting the online bootstrap. The metric is the repo's own
    // §3.4 criterion ("only after the RL model is well trained …"):
    // the first round at which MLF-RL's return-EMA convergence
    // detector fires. Per-round rewards are also logged so the JSON
    // can show both arms settle at the same final reward level.
    eprintln!("[training] convergence: warm vs cold fine-tuning...");
    // Triple the arrival volume: contention makes placement quality
    // visible in the online reward (an empty cluster scores every
    // policy alike), while the job shapes stay on the distribution
    // the student trained on.
    let conv_exp = drift_phase1(x * 3.0, tf, seed.wrapping_add(11));
    let conv_jobs = conv_exp.jobs();
    let run_probe = |policy: Option<rl::ScoringPolicy>| {
        let mut inner = mlfs::Mlfs::rl(
            params,
            MlfRlConfig {
                seed: seed.wrapping_add(17),
                // Episode returns on this workload carry ~3–5%
                // relative noise per episode (arrival bursts), so the
                // default 2% tolerance can never accumulate a stable
                // window. The outcome plateaus across 6–8%: the same
                // rounds-to-converge for either arm — the choice is
                // not knife-edge.
                convergence_tol: 0.06,
                ..Default::default()
            },
        );
        if let (Some(rl), Some(p)) = (inner.rl_mut(), policy) {
            // Sets imitation_rounds to 0: straight into the RL phase.
            rl.import_policy(p);
        }
        let mut probe = RewardProbe {
            inner,
            beta: params.beta,
            rewards: Vec::new(),
            emas: Vec::new(),
            converged_at: None,
        };
        let _ = mlfs_sim::engine::run(conv_exp.sim.clone(), conv_jobs.clone(), &mut probe);
        (probe.rewards, probe.emas, probe.converged_at)
    };
    let (warm_rewards, warm_emas, warm_conv) = run_probe(Some(warm_policy));
    let (cold_rewards, cold_emas, cold_conv) = run_probe(None);
    if let Some(path) = args.get("dump-rewards") {
        let mut csv = String::from("round,warm,cold,warm_ema,cold_ema\n");
        let fmt_ema = |e: Option<&Option<f64>>| match e {
            Some(Some(v)) => format!("{v}"),
            _ => String::new(),
        };
        for i in 0..warm_rewards.len().max(cold_rewards.len()) {
            use std::fmt::Write as _;
            let _ = writeln!(
                csv,
                "{i},{},{},{},{}",
                warm_rewards.get(i).copied().unwrap_or(f64::NAN),
                cold_rewards.get(i).copied().unwrap_or(f64::NAN),
                fmt_ema(warm_emas.get(i)),
                fmt_ema(cold_emas.get(i)),
            );
        }
        let _ = std::fs::write(path, csv);
    }
    // "Its final online reward" is the return level the detector
    // stabilised at — its final EMA. (The tail of the *per-round*
    // reward curve is dominated by end-of-run backlog noise and would
    // misreport the plateau.)
    let final_ema = |emas: &[Option<f64>]| emas.iter().rev().find_map(|e| *e).unwrap_or(0.0);
    let (warm_final, cold_final) = (final_ema(&warm_emas), final_ema(&cold_emas));
    eprintln!(
        "[training]   warm converges at round {warm_conv:?} (return EMA {warm_final:.2}), cold at {cold_conv:?} (EMA {cold_final:.2})"
    );
    match (warm_conv, cold_conv) {
        (Some(w), Some(c)) if w < c => {}
        (Some(w), Some(c)) => failures.push(format!(
            "warm start not faster to converge: warm round {w} vs cold round {c}"
        )),
        (w, c) => failures.push(format!(
            "convergence detector did not fire in both arms: warm {w:?} cold {c:?}"
        )),
    }
    // The warm arm may not buy speed by settling at a materially worse
    // return plateau than cold's.
    if warm_final < cold_final - 0.10 * cold_final.abs() {
        failures.push(format!(
            "warm arm settled below cold's final return level: {warm_final:.3} vs {cold_final:.3}"
        ));
    }
    runs.push(Value::Map(vec![
        ("phase".into(), Value::Str("convergence".into())),
        (
            "warm_converged_round".into(),
            warm_conv.map_or(Value::Null, |w| Value::U64(w as u64)),
        ),
        (
            "cold_converged_round".into(),
            cold_conv.map_or(Value::Null, |c| Value::U64(c as u64)),
        ),
        ("warm_final_return_ema".into(), Value::F64(warm_final)),
        ("cold_final_return_ema".into(), Value::F64(cold_final)),
        (
            "cold_imitation_rounds".into(),
            Value::U64(MlfRlConfig::default().imitation_rounds as u64),
        ),
        (
            "warm_total_rounds".into(),
            Value::U64(warm_rewards.len() as u64),
        ),
        (
            "cold_total_rounds".into(),
            Value::U64(cold_rewards.len() as u64),
        ),
    ]));

    // ---- Emit + gate. ---------------------------------------------
    let doc = Value::Map(vec![
        ("meta".into(), meta),
        ("runs".into(), Value::Seq(runs)),
        (
            "failures".into(),
            Value::Seq(failures.iter().map(|f| Value::Str(f.clone())).collect()),
        ),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out, serde_json::value_to_string_pretty(&doc) + "\n") {
        eprintln!("[training] cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("[training] wrote {out}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[training] GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
