//! Regenerate **Figure 8** (effectiveness of task migration):
//!
//! * panel (a): number of server-overload occurrences and bandwidth
//!   cost, with vs without migration — paper: −36–60% overloads at
//!   +10–14% bandwidth;
//! * panel (b): average accuracy by deadline and average JCT — paper:
//!   +8–10% accuracy, −15–24% JCT.
//!
//! ```sh
//! cargo run --release -p mlfs-bench --bin fig8 -- [--panel a|b] [--xs 0.25,0.5,1] [--tf 16] [--seed 42]
//! ```

use metrics::Table;
use mlfs::Params;
use mlfs_bench::Args;
use mlfs_sim::experiments::ablation;

fn main() {
    let args = Args::parse();
    let xs = if args.has("full") {
        vec![0.25, 0.5, 1.0, 2.0, 3.0]
    } else {
        args.f64_list("xs", &[0.25, 0.5, 1.0])
    };
    let tf = args.f64("tf", 16.0);
    let seed = args.u64("seed", 42);
    let panel = args.get("panel");

    println!("Figure 8 — effectiveness of task migration (MLF-H ablation)");
    let mut a = Table::new(&[
        "jobs",
        "overloads w/",
        "overloads w/o",
        "dOverl",
        "bw w/ (TB)",
        "bw w/o (TB)",
        "dBW",
    ]);
    let mut b = Table::new(&[
        "jobs",
        "acc w/",
        "acc w/o",
        "dAcc",
        "JCT w/ (min)",
        "JCT w/o (min)",
        "dJCT",
    ]);
    for &x in &xs {
        let e = ablation("fig8", x, tf, seed);
        eprintln!("[run] x={} ({} jobs)...", x, e.trace.jobs);
        let mut with = e.scheduler_with_params("MLF-H", seed, Params::default());
        let m_with = e.run(with.as_mut());
        let mut without = e.scheduler_with_params(
            "MLF-H",
            seed,
            Params {
                use_migration: false,
                ..Params::default()
            },
        );
        let m_wo = e.run(without.as_mut());
        let pct = |w: f64, wo: f64| format!("{:+.1}%", 100.0 * (w - wo) / wo.max(1e-9));
        a.row(vec![
            format!("{}", e.trace.jobs),
            format!("{}", m_with.overload_occurrences),
            format!("{}", m_wo.overload_occurrences),
            pct(
                m_with.overload_occurrences as f64,
                m_wo.overload_occurrences as f64,
            ),
            format!("{:.2}", m_with.bandwidth_tb()),
            format!("{:.2}", m_wo.bandwidth_tb()),
            pct(m_with.bandwidth_tb(), m_wo.bandwidth_tb()),
        ]);
        b.row(vec![
            format!("{}", e.trace.jobs),
            format!("{:.3}", m_with.avg_accuracy()),
            format!("{:.3}", m_wo.avg_accuracy()),
            pct(m_with.avg_accuracy(), m_wo.avg_accuracy()),
            format!("{:.1}", m_with.avg_jct_mins()),
            format!("{:.1}", m_wo.avg_jct_mins()),
            pct(m_with.avg_jct_mins(), m_wo.avg_jct_mins()),
        ]);
    }
    if panel.is_none() || panel == Some("a") {
        println!("\n== (a) server overload occurrences & bandwidth cost ==");
        println!("{a}");
        println!("(paper: migration reduces overload occurrences by 36-60% and increases bandwidth by 10-14%)");
    }
    if panel.is_none() || panel == Some("b") {
        println!("\n== (b) average accuracy & average JCT ==");
        println!("{b}");
        println!("(paper: migration increases accuracy by 8-10% and reduces JCT by 15-24%)");
    }
}
