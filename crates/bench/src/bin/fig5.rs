//! Regenerate **Figure 5** (overall performance, large-scale
//! simulation): the Philly-scale cluster (550 servers × `--scale`)
//! with `117325·x·scale` jobs, all ten schedulers, panels (a)–(h).
//!
//! ```sh
//! cargo run --release -p mlfs-bench --bin fig5 -- \
//!     [--repeats 10] [--xs 0.5,1,2] [--scale 0.02] [--tf 40] [--seed 42] [--panel b] [--full] [--json results]
//! ```
//!
//! `--full` uses the paper's x range {0.5, 1, 2, 3, 4}. The `--scale`
//! knob shrinks both the cluster and the job count together, so
//! offered load per GPU matches the paper at any scale (DESIGN.md's
//! substitution note; EXPERIMENTS.md records the scale used).

use mlfs_bench::{dump_json, print_figure_panels, sweep_repeated, Args};
use mlfs_sim::experiments::fig5;

fn main() {
    let args = Args::parse();
    let xs = if args.has("full") {
        vec![0.5, 1.0, 2.0, 3.0, 4.0]
    } else {
        args.f64_list("xs", &[0.5, 1.0, 2.0])
    };
    let scale = args.f64("scale", 0.02);
    let tf = args.f64("tf", 40.0);
    let seed = args.u64("seed", 42);
    let panel = args.get("panel").and_then(|s| s.chars().next());
    let repeats = args.u64("repeats", 1) as usize;

    println!("Figure 5 — overall performance in large-scale simulation");
    println!(
        "cluster: {} servers (scale {scale}); time compression {tf}x; seed {seed}",
        ((550.0 * scale).round() as usize).max(1)
    );

    let names = baselines::FIGURE_SCHEDULERS;
    let cells = sweep_repeated(&xs, &names, seed, repeats, |x, s| fig5(x, scale, tf, s));
    print_figure_panels(&cells, &names, &xs, panel);

    if let Some(dir) = args.get("json") {
        dump_json(&cells, dir, "fig5").expect("write JSON results");
        println!("\nraw metrics dumped to {dir}/");
    }
}
