//! Regenerate **Figure 7** (bandwidth consideration): average JCT and
//! bandwidth cost with and without the bandwidth terms in the RIAL
//! ideal vectors (Eq. 2's placement extension).
//!
//! Paper: the bandwidth consideration reduces JCT by 5–15% and
//! bandwidth cost by 20–35%.
//!
//! ```sh
//! cargo run --release -p mlfs-bench --bin fig7 -- [--xs 0.25,0.5,1] [--tf 16] [--seed 42]
//! ```

use metrics::Table;
use mlfs::Params;
use mlfs_bench::Args;
use mlfs_sim::experiments::ablation;

fn main() {
    let args = Args::parse();
    let xs = if args.has("full") {
        vec![0.25, 0.5, 1.0, 2.0, 3.0]
    } else {
        args.f64_list("xs", &[0.25, 0.5, 1.0])
    };
    let tf = args.f64("tf", 16.0);
    let seed = args.u64("seed", 42);

    println!("Figure 7 — bandwidth consideration (MLF-H ablation)");
    let mut t = Table::new(&[
        "jobs",
        "JCT w/ bw (min)",
        "JCT w/o bw (min)",
        "dJCT",
        "bw w/ (TB)",
        "bw w/o (TB)",
        "dBW",
    ]);
    for &x in &xs {
        let e = ablation("fig7", x, tf, seed);
        eprintln!("[run] x={} ({} jobs)...", x, e.trace.jobs);
        let mut with = e.scheduler_with_params("MLF-H", seed, Params::default());
        let m_with = e.run(with.as_mut());
        let mut without = e.scheduler_with_params(
            "MLF-H",
            seed,
            Params {
                use_bandwidth: false,
                ..Params::default()
            },
        );
        let m_wo = e.run(without.as_mut());
        t.row(vec![
            format!("{}", e.trace.jobs),
            format!("{:.1}", m_with.avg_jct_mins()),
            format!("{:.1}", m_wo.avg_jct_mins()),
            format!(
                "{:+.1}%",
                100.0 * (m_with.avg_jct_mins() - m_wo.avg_jct_mins())
                    / m_wo.avg_jct_mins().max(1e-9)
            ),
            format!("{:.2}", m_with.bandwidth_tb()),
            format!("{:.2}", m_wo.bandwidth_tb()),
            format!(
                "{:+.1}%",
                100.0 * (m_with.bandwidth_tb() - m_wo.bandwidth_tb())
                    / m_wo.bandwidth_tb().max(1e-9)
            ),
        ]);
    }
    println!("{t}");
    println!("(paper: bandwidth consideration reduces JCT by 5-15% and bandwidth cost by 20-35%)");
}
