//! Regenerate **Figure 9** (effectiveness of MLF-C system load
//! reduction): accuracy guarantee ratio and average JCT for MLFS with
//! and without MLF-C.
//!
//! Paper: MLF-C improves the accuracy guarantee ratio by 17–23% and
//! average JCT by 28–42%.
//!
//! ```sh
//! cargo run --release -p mlfs-bench --bin fig9 -- [--xs 0.25,0.5,1] [--tf 16] [--seed 42]
//! ```

use metrics::Table;
use mlfs::Params;
use mlfs_bench::Args;
use mlfs_sim::experiments::ablation;

fn main() {
    let args = Args::parse();
    let xs = if args.has("full") {
        vec![0.25, 0.5, 1.0, 2.0, 3.0]
    } else {
        args.f64_list("xs", &[0.25, 0.5, 1.0])
    };
    let tf = args.f64("tf", 16.0);
    let seed = args.u64("seed", 42);

    println!("Figure 9 — ML-based system load reduction (MLF-C ablation)");
    let mut t = Table::new(&[
        "jobs",
        "acc-ratio w/",
        "acc-ratio w/o",
        "dAccR",
        "JCT w/ (min)",
        "JCT w/o (min)",
        "dJCT",
    ]);
    for &x in &xs {
        let e = ablation("fig9", x, tf, seed);
        eprintln!("[run] x={} ({} jobs)...", x, e.trace.jobs);
        let mut with = e.trained_scheduler_with_params("MLFS", seed, Params::default());
        let m_with = e.run(with.as_mut());
        let mut without = e.trained_scheduler_with_params(
            "MLFS",
            seed,
            Params {
                use_mlfc: false,
                ..Params::default()
            },
        );
        let m_wo = e.run(without.as_mut());
        let pct = |w: f64, wo: f64| format!("{:+.1}%", 100.0 * (w - wo) / wo.max(1e-9));
        t.row(vec![
            format!("{}", e.trace.jobs),
            format!("{:.3}", m_with.accuracy_ratio()),
            format!("{:.3}", m_wo.accuracy_ratio()),
            pct(m_with.accuracy_ratio(), m_wo.accuracy_ratio()),
            format!("{:.1}", m_with.avg_jct_mins()),
            format!("{:.1}", m_wo.avg_jct_mins()),
            pct(m_with.avg_jct_mins(), m_wo.avg_jct_mins()),
        ]);
    }
    println!("{t}");
    println!(
        "(paper: MLF-C improves the accuracy guarantee ratio by 17-23% and average JCT by 28-42%)"
    );
}
