//! Extension ablations beyond the paper's figures (its stated future
//! work, DESIGN.md "Extensions"):
//!
//! * `--study progress` — gang vs pipelined progress semantics;
//! * `--study topology` — flat network vs two-level oversubscribed
//!   tree (the paper's limitation #3);
//! * `--study params` — sensitivity sweep over α, γ, p_s and h_r
//!   (the paper's "we will study the sensitivity of the parameters");
//! * `--study stragglers` — straggler injection with and without
//!   replication (§3.3.3 future work).
//!
//! ```sh
//! cargo run --release -p mlfs-bench --bin ablations -- --study params [--x 0.5] [--tf 16]
//! ```

use cluster::Topology;
use metrics::Table;
use mlfs::Params;
use mlfs_bench::Args;
use mlfs_sim::engine::StragglerConfig;
use mlfs_sim::experiments::fig4;
use mlfs_sim::ProgressModel;

fn main() {
    let args = Args::parse();
    let x = args.f64("x", 0.5);
    let tf = args.f64("tf", 16.0);
    let seed = args.u64("seed", 42);
    let study = args.get("study").unwrap_or("params").to_string();

    match study.as_str() {
        "progress" => progress_study(x, tf, seed),
        "topology" => topology_study(x, tf, seed),
        "params" => params_study(x, tf, seed),
        "stragglers" => straggler_study(x, tf, seed),
        other => {
            eprintln!("unknown study '{other}'; use progress|topology|params|stragglers");
            std::process::exit(2);
        }
    }
}

fn run_mlfh(e: &mlfs_sim::experiments::Experiment, params: Params) -> metrics::RunMetrics {
    let mut s = e.scheduler_with_params("MLF-H", 7, params);
    e.run(s.as_mut())
}

fn progress_study(x: f64, tf: f64, seed: u64) {
    println!("Ablation: gang vs pipelined progress semantics (MLF-H)");
    let mut t = Table::new(&["model", "avg JCT (min)", "deadline %", "avg acc", "bw (TB)"]);
    for model in [ProgressModel::Pipelined, ProgressModel::Gang] {
        let mut e = fig4(x, tf, seed);
        e.sim.progress = model;
        let m = run_mlfh(&e, Params::default());
        t.row(vec![
            format!("{model:?}"),
            format!("{:.1}", m.avg_jct_mins()),
            format!("{:.1}", 100.0 * m.deadline_ratio()),
            format!("{:.3}", m.avg_accuracy()),
            format!("{:.2}", m.bandwidth_tb()),
        ]);
    }
    println!("{t}");
    println!("(pipelined partial progress should dominate strict gang synchronisation)");
}

fn topology_study(x: f64, tf: f64, seed: u64) {
    println!("Ablation: flat network vs oversubscribed two-level tree (MLF-H)");
    let mut t = Table::new(&["topology", "avg JCT (min)", "deadline %", "bw (TB)"]);
    // Link bandwidths scale with time compression, exactly as the
    // experiment builder does for its default flat topology.
    let flat = Topology::Flat {
        inter_mbps: 1250.0 * tf,
        intra_mbps: 25_000.0 * tf,
    };
    let tree = Topology::Tree {
        rack_size: 5,
        rack_mbps: 1250.0 * tf,
        intra_mbps: 25_000.0 * tf,
        oversubscription: 4.0,
    };
    for (name, topo) in [("flat", flat), ("tree 4:1", tree)] {
        let mut e = fig4(x, tf, seed);
        e.sim.cluster.topology = topo;
        let m = run_mlfh(&e, Params::default());
        t.row(vec![
            name.to_string(),
            format!("{:.1}", m.avg_jct_mins()),
            format!("{:.1}", 100.0 * m.deadline_ratio()),
            format!("{:.2}", m.bandwidth_tb()),
        ]);
    }
    println!("{t}");
    println!("(cross-rack oversubscription slows comm-heavy jobs; the paper lists topology awareness as future work)");
}

fn params_study(x: f64, tf: f64, seed: u64) {
    println!("Parameter sensitivity (MLF-H), default α=0.3 γ=0.8 p_s=0.1 h_r=0.9");
    let e = fig4(x, tf, seed);
    let mut t = Table::new(&["setting", "avg JCT (min)", "deadline %", "avg acc"]);
    let base = Params::default();
    let mut row = |label: String, p: Params| {
        let m = run_mlfh(&e, p);
        t.row(vec![
            label,
            format!("{:.1}", m.avg_jct_mins()),
            format!("{:.1}", 100.0 * m.deadline_ratio()),
            format!("{:.3}", m.avg_accuracy()),
        ]);
    };
    row("default".into(), base);
    for alpha in [0.0, 0.1, 0.5, 0.7, 1.0] {
        row(format!("alpha={alpha}"), Params { alpha, ..base });
    }
    for gamma in [0.2, 0.5, 0.95] {
        row(format!("gamma={gamma}"), Params { gamma, ..base });
    }
    for p_s in [0.05, 0.3, 1.0] {
        row(format!("p_s={p_s}"), Params { p_s, ..base });
    }
    // h_r below the largest generated task share (0.85) leaves
    // dedicated-GPU tasks permanently unschedulable — the hard floor
    // of the paper's "larger h_r helps more fully utilize the
    // resources" trade-off.
    for h_r in [0.86, 0.95, 0.98] {
        row(
            format!("h_r={h_r}"),
            Params {
                h_r,
                h_s: h_r,
                ..base
            },
        );
    }
    println!("{t}");
}

fn straggler_study(x: f64, tf: f64, seed: u64) {
    println!("Straggler injection (MLF-H): none vs slowdown vs slowdown+replication");
    let mut t = Table::new(&["config", "avg JCT (min)", "deadline %", "bw (TB)"]);
    let configs: [(&str, Option<StragglerConfig>); 3] = [
        ("no stragglers", None),
        (
            "stragglers (0.5/h, 0.3x)",
            Some(StragglerConfig {
                probability_per_hour: 0.5,
                slowdown: 0.3,
                replicate: false,
            }),
        ),
        (
            "stragglers + replication",
            Some(StragglerConfig {
                probability_per_hour: 0.5,
                slowdown: 0.3,
                replicate: true,
            }),
        ),
    ];
    for (name, sc) in configs {
        let mut e = fig4(x, tf, seed);
        e.sim.straggler = sc;
        let m = run_mlfh(&e, Params::default());
        t.row(vec![
            name.to_string(),
            format!("{:.1}", m.avg_jct_mins()),
            format!("{:.1}", 100.0 * m.deadline_ratio()),
            format!("{:.2}", m.bandwidth_tb()),
        ]);
    }
    println!("{t}");
    println!("(replication trades bandwidth for JCT, §3.3.3)");
}
