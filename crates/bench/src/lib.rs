//! # mlfs-bench — the figure-regeneration harness
//!
//! One binary per paper figure (see `src/bin/`): each runs the exact
//! experiment configuration of `mlfs_sim::experiments`, prints the
//! series/rows the paper plots, and optionally dumps raw JSON under
//! `results/`. The Criterion bench (`benches/scheduler_overhead.rs`)
//! cross-checks Fig. 4h's decision-time measurements.
//!
//! All binaries accept the common flags parsed by [`Args`]:
//!
//! * `--xs 0.25,0.5,1` — workload multipliers (the paper's x axis);
//! * `--tf 16` — time-compression factor (see DESIGN.md);
//! * `--seed 42` — trace seed;
//! * `--scale 0.02` — cluster scale (fig5 only);
//! * `--panel a` — restrict to one panel (fig4/fig5/fig8);
//! * `--full` — the paper's full x range (slow!);
//! * `--json results/` — dump raw `RunMetrics` JSON.

use metrics::RunMetrics;
use std::collections::BTreeMap;

/// Minimal flag parser shared by the figure binaries (no external
/// dependency; flags are `--name value`).
#[derive(Debug, Clone)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_args(mut it: impl Iterator<Item = String>) -> Self {
        let mut flags = BTreeMap::new();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().unwrap_or_else(|| "true".into());
                flags.insert(name.to_string(), value);
            }
        }
        Args { flags }
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// A parsed numeric flag with default.
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// A parsed integer flag with default.
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// A boolean presence flag.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A comma-separated f64 list flag.
    pub fn f64_list(&self, name: &str, default: &[f64]) -> Vec<f64> {
        match self.get(name) {
            Some(s) => s.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }
}

/// One measured cell of a figure: workload multiplier × scheduler,
/// possibly over several seeded repetitions (the paper's error bars
/// are "the 1st and 99th percentiles and median … from 10
/// experiments", §4.1).
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload multiplier (paper x-axis value = jobs at that x).
    pub x: f64,
    /// Number of jobs that x corresponds to.
    pub jobs: usize,
    /// One `RunMetrics` per repetition (≥ 1).
    pub runs: Vec<RunMetrics>,
}

impl Cell {
    /// The first repetition (the representative run).
    pub fn metrics(&self) -> &RunMetrics {
        &self.runs[0]
    }

    /// Scheduler legend name.
    pub fn scheduler(&self) -> &str {
        &self.runs[0].scheduler
    }

    /// Median of `value` across repetitions.
    pub fn median(&self, value: impl Fn(&RunMetrics) -> f64) -> f64 {
        let vals: Vec<f64> = self.runs.iter().map(value).collect();
        metrics::percentile(&vals, 50.0)
    }

    /// (p1, median, p99) of `value` across repetitions.
    pub fn spread(&self, value: impl Fn(&RunMetrics) -> f64) -> (f64, f64, f64) {
        let vals: Vec<f64> = self.runs.iter().map(value).collect();
        (
            metrics::percentile(&vals, 1.0),
            metrics::percentile(&vals, 50.0),
            metrics::percentile(&vals, 99.0),
        )
    }
}

/// Run every scheduler in `names` across `xs` with `repeats` seeded
/// repetitions each, building experiments with `make` and pre-training
/// the RL variants. Cells are independent deterministic simulations,
/// so they run on a small worker pool (set `MLFS_BENCH_THREADS` to
/// override the default of the available parallelism, or 1 to
/// serialise).
pub fn sweep_repeated(
    xs: &[f64],
    names: &[&str],
    seed: u64,
    repeats: usize,
    make: impl Fn(f64, u64) -> mlfs_sim::experiments::Experiment + Sync,
) -> Vec<Cell> {
    let threads = std::env::var("MLFS_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    sweep_repeated_with_threads(xs, names, seed, repeats, threads, make)
}

/// [`sweep_repeated`] with an explicit worker count. Every cell runs
/// its own deterministic simulation from a per-cell seed, so the
/// result is bit-identical for any `threads` value (asserted by
/// `tests/parallel_sweep.rs`).
pub fn sweep_repeated_with_threads(
    xs: &[f64],
    names: &[&str],
    seed: u64,
    repeats: usize,
    threads: usize,
    make: impl Fn(f64, u64) -> mlfs_sim::experiments::Experiment + Sync,
) -> Vec<Cell> {
    let repeats = repeats.max(1);
    // Work items: (x index, name index, repetition).
    let mut items: Vec<(usize, usize, usize)> = Vec::new();
    for xi in 0..xs.len() {
        for ni in 0..names.len() {
            for r in 0..repeats {
                items.push((xi, ni, r));
            }
        }
    }
    let threads = threads.clamp(1, items.len().max(1));

    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<(usize, RunMetrics)>>> = (0..items.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(xi, ni, r)) = items.get(i) else {
                    break;
                };
                let run_seed = seed + 1000 * r as u64;
                let e = make(xs[xi], run_seed);
                eprintln!(
                    "[run] {} x={} ({} jobs) seed {}...",
                    names[ni], xs[xi], e.trace.jobs, run_seed
                );
                let mut s = e.trained_scheduler(names[ni], run_seed.wrapping_add(7));
                let m = e.run(s.as_mut());
                *results[i].lock().unwrap() = Some((e.trace.jobs, m));
            });
        }
    });

    // Reassemble into cells in (x, name) order.
    let mut out = Vec::new();
    for (xi, &x) in xs.iter().enumerate() {
        for ni in 0..names.len() {
            let mut runs = Vec::with_capacity(repeats);
            let mut jobs = 0;
            for (i, &(ixi, ini, _)) in items.iter().enumerate() {
                if ixi == xi && ini == ni {
                    let (j, m) = results[i].lock().unwrap().take().expect("worker filled");
                    jobs = j;
                    runs.push(m);
                }
            }
            out.push(Cell { x, jobs, runs });
        }
    }
    out
}

/// Single-repetition sweep (the default for the figure binaries).
pub fn sweep(
    xs: &[f64],
    names: &[&str],
    seed: u64,
    make: impl Fn(f64) -> mlfs_sim::experiments::Experiment + Sync,
) -> Vec<Cell> {
    sweep_repeated(xs, names, seed, 1, |x, s| {
        let mut e = make(x);
        e.trace.seed = s;
        e
    })
}

/// Dump cells as JSON files under `dir` (one per repetition).
pub fn dump_json(cells: &[Cell], dir: &str, figure: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for c in cells {
        for (r, m) in c.runs.iter().enumerate() {
            let path = format!(
                "{dir}/{figure}-x{}-{}-r{}.json",
                c.x,
                m.scheduler.replace(' ', "_"),
                r
            );
            std::fs::write(&path, serde_json::to_string_pretty(m).unwrap())?;
        }
    }
    Ok(())
}

/// Dump a panel as CSV (one row per scheduler, one column per x) for
/// plotting.
pub fn dump_csv(
    cells: &[Cell],
    names: &[&str],
    xs: &[f64],
    path: &str,
    value: impl Fn(&RunMetrics) -> f64,
) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::from("scheduler");
    for &x in xs {
        out.push_str(&format!(",x{x}"));
    }
    out.push('\n');
    for name in names {
        out.push_str(name);
        for &x in xs {
            let v = cells
                .iter()
                .find(|c| c.x == x && c.scheduler() == *name)
                .map(|c| c.median(&value));
            out.push_str(&format!(
                ",{}",
                v.map(|v| v.to_string()).unwrap_or_default()
            ));
        }
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Print a per-panel series table: one row per scheduler, one column
/// per x, using `value` to extract the metric.
pub fn print_panel(
    title: &str,
    cells: &[Cell],
    names: &[&str],
    xs: &[f64],
    value: impl Fn(&RunMetrics) -> f64,
    fmt: impl Fn(f64) -> String,
) {
    println!("\n== {title} ==");
    let mut header: Vec<String> = vec!["scheduler".into()];
    for &x in xs {
        let jobs = cells.iter().find(|c| c.x == x).map(|c| c.jobs).unwrap_or(0);
        header.push(format!("{jobs} jobs"));
    }
    let mut table = metrics::Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for name in names {
        let mut row = vec![name.to_string()];
        for &x in xs {
            let cell = cells.iter().find(|c| c.x == x && c.scheduler() == *name);
            row.push(match cell {
                Some(c) if c.runs.len() > 1 => {
                    let (p1, med, p99) = c.spread(&value);
                    format!("{} [{}..{}]", fmt(med), fmt(p1), fmt(p99))
                }
                Some(c) => fmt(c.median(&value)),
                None => "-".into(),
            });
        }
        table.row(row);
    }
    println!("{table}");
}

/// Print the eight panels of Fig. 4 / Fig. 5 (or a single one).
pub fn print_figure_panels(cells: &[Cell], names: &[&str], xs: &[f64], panel: Option<char>) {
    let want = |c: char| panel.is_none() || panel == Some(c);
    if want('a') {
        // Panel (a): CDF of JCT at the heaviest workload.
        let x_max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("\n== (a) CDF of jobs vs JCT (x = {x_max}) ==");
        let mut t =
            metrics::Table::new(&["scheduler", "<1 min", "<10 min", "<100 min", "<1000 min"]);
        for name in names {
            if let Some(c) = cells
                .iter()
                .find(|c| c.x == x_max && c.scheduler() == *name)
            {
                t.row(vec![
                    name.to_string(),
                    format!("{:.2}", c.median(|m| m.jct_cdf_at(1.0))),
                    format!("{:.2}", c.median(|m| m.jct_cdf_at(10.0))),
                    format!("{:.2}", c.median(|m| m.jct_cdf_at(100.0))),
                    format!("{:.2}", c.median(|m| m.jct_cdf_at(1000.0))),
                ]);
            }
        }
        println!("{t}");
    }
    if want('b') {
        print_panel(
            "(b) average JCT (min)",
            cells,
            names,
            xs,
            |m| m.avg_jct_mins(),
            |v| format!("{v:.1}"),
        );
    }
    if want('c') {
        print_panel(
            "(c) job deadline guarantee ratio",
            cells,
            names,
            xs,
            |m| m.deadline_ratio(),
            |v| format!("{v:.3}"),
        );
    }
    if want('d') {
        print_panel(
            "(d) average job waiting time (s)",
            cells,
            names,
            xs,
            |m| m.avg_waiting_secs(),
            |v| format!("{v:.1}"),
        );
    }
    if want('e') {
        print_panel(
            "(e) average accuracy by deadline",
            cells,
            names,
            xs,
            |m| m.avg_accuracy(),
            |v| format!("{v:.3}"),
        );
    }
    if want('f') {
        print_panel(
            "(f) accuracy guarantee ratio",
            cells,
            names,
            xs,
            |m| m.accuracy_ratio(),
            |v| format!("{v:.3}"),
        );
    }
    if want('g') {
        print_panel(
            "(g) bandwidth cost (TB)",
            cells,
            names,
            xs,
            |m| m.bandwidth_tb(),
            |v| format!("{v:.2}"),
        );
    }
    if want('h') {
        print_panel(
            "(h) scheduler time overhead (ms)",
            cells,
            names,
            xs,
            |m| m.avg_decision_ms(),
            |v| format!("{v:.3}"),
        );
    }
}

/// Build a realistic mid-run cluster snapshot for micro-benchmarks:
/// `n_jobs` jobs arrived, roughly half their tasks placed (via
/// least-loaded first fit), the other half queued. Returns the parts
/// of a [`mlfs::SchedulerContext`].
pub fn snapshot(
    n_jobs: usize,
    seed: u64,
) -> (cluster::Cluster, workload::JobArena, Vec<cluster::TaskId>) {
    use cluster::TaskId;
    use simcore::SimTime;
    use workload::TaskRunState;

    let mut trace = workload::TraceConfig::paper_real(1.0, 16.0, seed);
    trace.jobs = n_jobs;
    let specs = workload::TraceGenerator::new(trace).generate();
    let mut cluster = cluster::Cluster::new(&cluster::ClusterConfig::paper_testbed());
    let mut jobs = workload::JobArena::new();
    let mut queue = Vec::new();
    for (ji, spec) in specs.into_iter().enumerate() {
        let id = spec.id;
        let mut state = workload::JobState::new(spec, SimTime::ZERO);
        for i in 0..state.spec.task_count() {
            let t = TaskId::new(id, i as u16);
            let ts = &state.spec.tasks[i];
            // Place even jobs' tasks if they fit anywhere.
            let host = if ji % 2 == 0 {
                cluster
                    .servers()
                    .iter()
                    .filter(|s| s.can_host(&ts.demand, ts.gpu_share, 1.0))
                    .map(|s| (s.overload_degree(), s.id))
                    .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(_, s)| s)
            } else {
                None
            };
            match host {
                Some(server) => {
                    let gpu = cluster
                        .place(t, server, ts.demand, ts.gpu_share)
                        .expect("snapshot placement");
                    state.task_states[i] = TaskRunState::Running { server, gpu };
                }
                None => queue.push(t),
            }
        }
        jobs.insert(id, state);
    }
    (cluster, jobs, queue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_half_placed() {
        let (cluster, jobs, queue) = snapshot(40, 3);
        assert_eq!(jobs.len(), 40);
        assert!(cluster.placed_count() > 0);
        assert!(!queue.is_empty());
        let total_tasks: usize = jobs.values().map(|j| j.spec.task_count()).sum();
        assert_eq!(cluster.placed_count() + queue.len(), total_tasks);
    }

    #[test]
    fn args_parse_flags_and_lists() {
        let a = Args::parse_args(
            ["--xs", "0.25,0.5", "--tf", "16", "--full"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.f64_list("xs", &[1.0]), vec![0.25, 0.5]);
        assert_eq!(a.f64("tf", 8.0), 16.0);
        assert!(a.has("full"));
        assert!(!a.has("json"));
        assert_eq!(a.u64("seed", 42), 42);
    }

    #[test]
    fn args_defaults_apply() {
        let a = Args::parse_args(std::iter::empty());
        assert_eq!(a.f64_list("xs", &[0.25, 0.5]), vec![0.25, 0.5]);
        assert_eq!(a.f64("tf", 16.0), 16.0);
    }
}
