//! The streaming front-end is a pure re-plumbing of the batch
//! engine: a recorded arrival stream replayed through `mlfs-service`
//! must reproduce the batch run's `RunMetrics` **bit for bit** for
//! every figure scheduler, on both deterministic figure
//! configurations. The driver below submits jobs *just in time* —
//! each spec enters the service only once the decision loop is about
//! to need it — so the test exercises real streaming, not a disguised
//! batch submission.

use baselines::FIGURE_SCHEDULERS;
use mlfs_service::Service;
use mlfs_sim::engine::StepOutcome;
use mlfs_sim::experiments::Experiment;

fn batch(e: &Experiment, name: &str) -> String {
    let mut scheduler = e.scheduler(name, 7);
    let mut m = e.run(scheduler.as_mut());
    m.clear_wall_clock();
    serde_json::to_string(&m).expect("serializable metrics")
}

/// Replay the trace through a [`Service`], submitting each job no
/// earlier than needed. Two invariants keep the stream equivalent to
/// the batch pending list:
///
/// * every spec is in the engine before the round that admits it
///   (arrival ≤ the upcoming round time);
/// * the engine always holds at least one future arrival while specs
///   remain, so its idle-jump target (and drained check) see exactly
///   what the batch run's pending list would show.
fn streamed(e: &Experiment, name: &str) -> String {
    let mut specs = e.jobs();
    specs.sort_by_key(|s| s.arrival); // stable: tie order matches batch
    let first_arrival = specs.first().map(|s| s.arrival);
    let mut svc = Service::new(e.sim.clone(), e.scheduler(name, 7), None);
    let mut iter = specs.into_iter().peekable();
    loop {
        // The time the next round will run at: the first arrival
        // before `begin`, the engine clock afterwards.
        let upcoming = if svc.rounds() == 0 {
            first_arrival.unwrap_or(svc.now())
        } else {
            svc.now()
        };
        while iter
            .peek()
            .is_some_and(|s| s.arrival <= upcoming || svc.pending_arrivals() == 0)
        {
            let spec = iter.next().expect("peeked");
            assert!(
                svc.submit(spec).accepted(),
                "no admission control => accepted"
            );
        }
        match svc.tick() {
            StepOutcome::Continue => {}
            StepOutcome::Drained | StepOutcome::Horizon => {
                assert!(iter.peek().is_none(), "engine stopped mid-stream");
                break;
            }
        }
    }
    let mut m = svc.finish();
    m.clear_wall_clock();
    serde_json::to_string(&m).expect("serializable metrics")
}

fn assert_service_matches_batch(mut e: Experiment, jobs: usize, label: &str) {
    e.trace.jobs = jobs; // cheap: determinism, not statistics, is the point
    for name in FIGURE_SCHEDULERS {
        let b = batch(&e, name);
        let s = streamed(&e, name);
        assert_eq!(
            b, s,
            "{label}/{name}: streamed service diverged from the batch engine"
        );
    }
}

#[test]
fn all_schedulers_bit_identical_streamed_on_fig4() {
    assert_service_matches_batch(mlfs_sim::experiments::fig4(0.25, 64.0, 7), 8, "fig4");
}

#[test]
fn all_schedulers_bit_identical_streamed_on_fig5() {
    assert_service_matches_batch(mlfs_sim::experiments::fig5(1.0, 0.02, 40.0, 7), 10, "fig5");
}
