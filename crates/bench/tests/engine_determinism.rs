//! The event-driven engine is a pure performance optimisation: for
//! every figure scheduler it must reproduce the naive reference
//! engine's `RunMetrics` **bit for bit** — same completions, same
//! accuracies, same bandwidth, same per-round telemetry counters —
//! on both deterministic figure configurations (the Fig. 4 testbed
//! trace and the Fig. 5 Philly-scale simulation). The in-crate sim
//! tests cover randomized small workloads (proptest) plus straggler
//! and fault configs; this test pins the ten published schedulers on
//! the exact experiment setups the figures use.

use baselines::FIGURE_SCHEDULERS;
use mlfs_sim::engine::EngineMode;
use mlfs_sim::experiments::Experiment;

fn run_once(e: &Experiment, name: &str, engine: EngineMode) -> String {
    let mut e = e.clone();
    e.sim.engine = engine;
    let mut scheduler = e.scheduler(name, 7);
    let mut m = e.run(scheduler.as_mut());
    m.clear_wall_clock();
    serde_json::to_string(&m).expect("serializable metrics")
}

fn assert_engines_agree(mut e: Experiment, jobs: usize, label: &str) {
    e.trace.jobs = jobs; // cheap: determinism, not statistics, is the point
    for name in FIGURE_SCHEDULERS {
        let naive = run_once(&e, name, EngineMode::Naive);
        let event = run_once(&e, name, EngineMode::EventDriven);
        assert_eq!(
            naive, event,
            "{label}/{name}: event engine diverged from the naive reference"
        );
    }
}

#[test]
fn all_schedulers_bit_identical_on_fig4() {
    assert_engines_agree(mlfs_sim::experiments::fig4(0.25, 64.0, 7), 8, "fig4");
}

#[test]
fn all_schedulers_bit_identical_on_fig5() {
    assert_engines_agree(mlfs_sim::experiments::fig5(1.0, 0.02, 40.0, 7), 10, "fig5");
}
