//! The obs layer must be a pure observer: attaching a JSONL trace
//! sink may not change a single scheduling decision. Every figure
//! scheduler runs the same seeded experiment twice — tracing disabled
//! and tracing to a file — and the serialized `RunMetrics` (minus the
//! wall-clock timing fields) must be bit-identical. The emitted trace
//! itself must be non-empty, line-parseable JSONL.

use baselines::FIGURE_SCHEDULERS;

fn run_once(name: &str, trace: obs::TraceConfig) -> String {
    let mut e = mlfs_sim::experiments::fig4(0.25, 64.0, 7);
    e.trace.jobs = 8; // cheap: determinism, not statistics, is the point
    e.sim.trace = trace;
    let mut scheduler = e.scheduler(name, 7);
    let mut m = e.run(scheduler.as_mut());
    m.clear_wall_clock();
    serde_json::to_string(&m).expect("serializable metrics")
}

#[test]
fn jsonl_tracing_never_perturbs_scheduling() {
    for name in FIGURE_SCHEDULERS {
        let off = run_once(name, obs::TraceConfig::Disabled);
        let slug: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = std::env::temp_dir().join(format!("mlfs_trace_det_{slug}.jsonl"));
        let on = run_once(name, obs::TraceConfig::Jsonl { path: path.clone() });
        assert_eq!(off, on, "{name}: enabling the trace sink perturbed the run");

        let text = std::fs::read_to_string(&path).expect("trace file written");
        std::fs::remove_file(&path).ok();
        // Round/span events flow for every scheduler, instrumented or
        // not, and each line must survive the round-trip parser.
        assert!(
            text.lines().count() > 0,
            "{name}: trace file came out empty"
        );
        for line in text.lines() {
            assert!(
                obs::TraceEvent::from_json_line(line).is_some(),
                "{name}: unparseable trace line: {line}"
            );
        }
    }
}

#[test]
fn ring_sink_retains_the_newest_events() {
    let mut e = mlfs_sim::experiments::fig4(0.25, 64.0, 7);
    e.trace.jobs = 8;
    e.sim.trace = obs::TraceConfig::Ring { capacity: 64 };
    let sim = mlfs_sim::engine::Simulation::new(e.sim.clone(), e.jobs());
    let tracer = sim.tracer();
    let mut scheduler = e.scheduler("MLF-H", 7);
    let m = sim.run(scheduler.as_mut());
    let events = tracer.buffered();
    assert_eq!(events.len(), 64, "ring must fill to capacity");
    // The newest retained events cover the final rounds of the run.
    let last_round = events
        .iter()
        .filter_map(|ev| match ev {
            obs::TraceEvent::RoundEnd { round, .. } => Some(*round),
            _ => None,
        })
        .max();
    assert_eq!(last_round, Some(m.rounds));
    // Counters made it into the metrics too.
    assert!(m.telemetry.placements > 0);
}
