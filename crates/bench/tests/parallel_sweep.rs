//! The parallel sweep must be a pure scheduling optimisation: every
//! (scheduler, x, repeat) cell owns a deterministic simulation seeded
//! independently of worker interleaving, so running the sweep on one
//! thread or many must produce bit-identical `RunMetrics`.

use mlfs_bench::sweep_repeated_with_threads;

fn run_with(threads: usize) -> Vec<String> {
    let xs = [0.25];
    let names = ["MLF-H", "Tiresias", "Gandiva"];
    let cells = sweep_repeated_with_threads(&xs, &names, 42, 2, threads, |x, seed| {
        let mut e = mlfs_sim::experiments::fig4(x, 64.0, seed);
        e.trace.jobs = 12; // keep the test cheap; determinism is the point
        e
    });
    cells
        .iter()
        .flat_map(|c| c.runs.iter())
        .map(|m| {
            // Wall-clock timing fields are scheduler overhead, not
            // simulation state — they legitimately vary run to run.
            let mut m = m.clone();
            m.clear_wall_clock();
            serde_json::to_string(&m).expect("serializable metrics")
        })
        .collect()
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let sequential = run_with(1);
    let parallel = run_with(4);
    assert_eq!(sequential.len(), parallel.len());
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "run {i} diverged between 1 and 4 worker threads");
    }
}
