//! The batched inference/training path must not perturb simulation
//! results: MLF-RL's candidate scoring, REINFORCE updates and replay
//! resampling all run through `FeatureBatch`/`Workspace` now, and a
//! seeded end-to-end run has to produce the same `RunMetrics` every
//! time — imitation phase, exploration sampling and online training
//! included.

use mlfs::{MlfRlConfig, Params};

fn run_once(seed: u64) -> String {
    let mut e = mlfs_sim::experiments::fig4(0.25, 64.0, seed);
    e.trace.jobs = 10; // cheap, but long enough to cross into the RL phase
    let cfg = MlfRlConfig {
        imitation_rounds: e.expected_rounds() / 4,
        train_interval: 4,
        explore: true,
        seed,
        ..Default::default()
    };
    let mut scheduler = mlfs::Mlfs::rl(Params::default(), cfg);
    let mut m = e.run(&mut scheduler);
    // Wall-clock timing fields legitimately vary run to run.
    m.clear_wall_clock();
    serde_json::to_string(&m).expect("serializable metrics")
}

#[test]
fn seeded_mlfrl_run_is_reproducible() {
    let a = run_once(1234);
    let b = run_once(1234);
    assert_eq!(a, b, "seeded MLF-RL runs diverged");
}
