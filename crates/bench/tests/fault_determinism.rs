//! Fault injection must be invisible when disabled and reproducible
//! when enabled. The fault process draws from a forked RNG stream, so
//! a `fault: None` run and a zero-rate `FaultConfig` run must be
//! *bit-identical* (same serialized `RunMetrics`), and a crashy run
//! must replay exactly under the same seed.

use mlfs::Params;
use mlfs_sim::FaultConfig;

fn run_once(seed: u64, fault: Option<FaultConfig>) -> String {
    let mut e = mlfs_sim::experiments::fig4(0.25, 64.0, seed);
    e.trace.jobs = 10;
    e.sim.fault = fault;
    let mut scheduler = mlfs::Mlfs::heuristic(Params::default());
    let mut m = e.run(&mut scheduler);
    // Wall-clock timing fields legitimately vary run to run.
    m.clear_wall_clock();
    serde_json::to_string(&m).expect("serializable metrics")
}

#[test]
fn disabled_faults_leave_runs_bit_identical() {
    let baseline = run_once(77, None);
    let again = run_once(77, None);
    assert_eq!(baseline, again, "fault-free runs diverged");

    // A present-but-inert FaultConfig (no random process, no schedule)
    // must not perturb a single bit either.
    let inert = run_once(
        77,
        Some(FaultConfig {
            mtbf_hours: 0.0,
            mttr_hours: 0.0,
            schedule: Vec::new(),
            checkpoint_iters: 100,
        }),
    );
    assert_eq!(baseline, inert, "inert FaultConfig perturbed the run");

    // And the fault counters stay at their zero defaults.
    assert!(baseline.contains("\"server_failures\":0"));
    assert!(baseline.contains("\"task_restarts\":0"));
    assert!(baseline.contains("\"lost_gpu_hours\":0"));
}

#[test]
fn seeded_faulty_runs_are_reproducible() {
    let crashy = || {
        run_once(
            77,
            Some(FaultConfig {
                mtbf_hours: 2.0,
                mttr_hours: 0.5,
                schedule: Vec::new(),
                checkpoint_iters: 20,
            }),
        )
    };
    let a = crashy();
    let b = crashy();
    assert_eq!(a, b, "seeded faulty runs diverged");
}
