//! Criterion micro-benchmark for **Fig. 4h / 5h** (scheduler time
//! overhead): one `schedule()` decision per scheduler on an identical
//! mid-run cluster snapshot (80 GPUs, 60 active jobs, half the tasks
//! queued).
//!
//! The engine also measures decision time in situ during every figure
//! run; this bench provides the controlled, repeatable version.
//!
//! ```sh
//! cargo bench -p mlfs-bench
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use mlfs::{Scheduler, SchedulerContext};
use simcore::SimTime;

fn bench_schedulers(c: &mut Criterion) {
    let (cluster, jobs, queue) = mlfs_bench::snapshot(60, 7);
    let mut group = c.benchmark_group("scheduler_overhead");
    group.sample_size(20);

    for name in baselines::FIGURE_SCHEDULERS {
        // MLFS variants without warm-up: MLF-RL/MLFS run their policy
        // path (imitation_rounds = 0) so the measured cost is the RL
        // decision cost, as in the paper's Fig. 4h.
        let mut sched: Box<dyn Scheduler> = match name {
            "MLF-H" => Box::new(mlfs::Mlfs::heuristic(mlfs::Params::default())),
            "MLF-RL" => Box::new(mlfs::Mlfs::rl(
                mlfs::Params::default(),
                mlfs::MlfRlConfig {
                    imitation_rounds: 0,
                    explore: false,
                    ..Default::default()
                },
            )),
            "MLFS" => Box::new(mlfs::Mlfs::full(
                mlfs::Params::default(),
                mlfs::MlfRlConfig {
                    imitation_rounds: 0,
                    explore: false,
                    ..Default::default()
                },
            )),
            other => baselines::by_name(other, 7).expect("known scheduler"),
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let ctx = SchedulerContext {
                    now: SimTime::from_mins(30),
                    jobs: &jobs,
                    cluster: &cluster,
                    queue: &queue,
                };
                std::hint::black_box(sched.schedule(&ctx))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
