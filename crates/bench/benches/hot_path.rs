//! Micro-benchmarks for the two inner-loop pieces of an MLF-H
//! decision, measured in isolation on the same 60-job snapshot the
//! `scheduler_overhead` bench uses:
//!
//! * `select_host` — one RIAL ideal-point host selection for a queued
//!   task (candidate filter + affinity map + distance argmin);
//! * `all_priorities` — Eq. 2–6 priorities for every live task.
//!
//! ```sh
//! cargo bench -p mlfs-bench --bench hot_path
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlfs::SchedulerContext;
use simcore::SimTime;

fn bench_hot_path(c: &mut Criterion) {
    let (cluster, jobs, queue) = mlfs_bench::snapshot(60, 7);
    let params = mlfs::Params::default();
    let task = *queue.first().expect("snapshot has queued tasks");

    let mut group = c.benchmark_group("hot_path");
    group.sample_size(30);
    group.bench_function("select_host", |b| {
        b.iter(|| {
            black_box(mlfs::placement::select_host(
                &cluster,
                &jobs,
                black_box(task),
                None,
                &params,
            ))
        })
    });
    group.bench_function("all_priorities", |b| {
        b.iter(|| {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(30),
                jobs: &jobs,
                cluster: &cluster,
                queue: &queue,
            };
            black_box(mlfs::MlfH::all_priorities(&ctx, &params))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
