//! Micro-benchmarks for the inner-loop pieces of a scheduling
//! decision, measured in isolation on the same 60-job snapshot the
//! `scheduler_overhead` bench uses:
//!
//! * `select_host` — one RIAL ideal-point host selection for a queued
//!   task (candidate filter + affinity map + distance argmin);
//! * `all_priorities` — Eq. 2–6 priorities for every live task;
//! * `scores_batch` — one batched policy forward over a full
//!   candidate set (the MLF-RL inference primitive);
//! * `mlfrl_decision` — one complete MLF-RL scheduling round (greedy
//!   policy, no imitation warm-up), the number the ≤200µs/decision
//!   target tracks;
//! * `mlfrl_decision_traced` — the same round with a disabled-sink
//!   tracer attached, guarding the ≤2% no-op observability budget;
//! * `event_calendar` — steady-state pop/push on the deadline
//!   calendar the event-driven engine advances through (one window's
//!   worth of eager pops plus re-arms at 1k pending events);
//! * `arena_job_row` — one SoA hot-row read per queued task (the
//!   arena lookup the engine and gang-feasibility checks lean on),
//!   against the `BTreeMap`-era cost this column layout replaced.
//!
//! ```sh
//! cargo bench -p mlfs-bench --bench hot_path
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlfs::{Scheduler, SchedulerContext};
use rl::{FeatureBatch, ScoringPolicy};
use simcore::{SimRng, SimTime};

fn bench_hot_path(c: &mut Criterion) {
    let (cluster, jobs, queue) = mlfs_bench::snapshot(60, 7);
    let params = mlfs::Params::default();
    let task = *queue.first().expect("snapshot has queued tasks");

    let mut group = c.benchmark_group("hot_path");
    group.sample_size(30);
    group.bench_function("select_host", |b| {
        b.iter(|| {
            black_box(mlfs::placement::select_host(
                &cluster,
                &jobs,
                black_box(task),
                None,
                &params,
            ))
        })
    });
    group.bench_function("all_priorities", |b| {
        b.iter(|| {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(30),
                jobs: &jobs,
                cluster: &cluster,
                queue: &queue,
            };
            black_box(mlfs::MlfH::all_priorities(&ctx, &params))
        })
    });

    // Batched candidate scoring at MLF-RL's production shape: the
    // default 12-candidate cap plus the queue option, through the
    // default 64-32 policy network.
    let mut rng = SimRng::new(7);
    let policy = ScoringPolicy::new(mlfs::features::FEATURE_DIM, &[64, 32], &mut rng);
    let mut batch = FeatureBatch::new(mlfs::features::FEATURE_DIM);
    for _ in 0..13 {
        let row = batch.push_row();
        for v in row.iter_mut() {
            *v = rng.range_f64(0.0, 1.0);
        }
    }
    let mut scores = Vec::new();
    group.bench_function("scores_batch", |b| {
        b.iter(|| {
            policy.scores_into(black_box(&batch), &mut scores);
            black_box(scores.last().copied())
        })
    });

    // One full MLF-RL decision round (greedy inference, as evaluated).
    let mut rl_sched = mlfs::Mlfs::rl(
        mlfs::Params::default(),
        mlfs::MlfRlConfig {
            imitation_rounds: 0,
            explore: false,
            ..Default::default()
        },
    );
    group.bench_function("mlfrl_decision", |b| {
        b.iter(|| {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(30),
                jobs: &jobs,
                cluster: &cluster,
                queue: &queue,
            };
            black_box(rl_sched.schedule(&ctx))
        })
    });

    // Identical round with a no-op tracer attached: counters tick but
    // no sink runs. The delta against `mlfrl_decision` is the
    // observability tax, budgeted at ≤2%.
    let mut traced_sched = mlfs::Mlfs::rl(
        mlfs::Params::default(),
        mlfs::MlfRlConfig {
            imitation_rounds: 0,
            explore: false,
            ..Default::default()
        },
    );
    traced_sched.attach_tracer(std::sync::Arc::new(obs::Tracer::disabled()));
    group.bench_function("mlfrl_decision_traced", |b| {
        b.iter(|| {
            let ctx = SchedulerContext {
                now: SimTime::from_mins(30),
                jobs: &jobs,
                cluster: &cluster,
                queue: &queue,
            };
            black_box(traced_sched.schedule(&ctx))
        })
    });

    // Deadline-calendar churn at paper-scale occupancy: pop the eight
    // earliest events of a window and re-arm each one later, the way
    // `advance_event` consumes and the admitter refills the calendar.
    group.bench_function("event_calendar", |b| {
        let mut cal: simcore::EventQueue<cluster::JobId> = simcore::EventQueue::new();
        let mut rng = SimRng::new(11);
        for i in 0..1000u32 {
            cal.push(SimTime(rng.range_u64(0, 1 << 30)), cluster::JobId(i));
        }
        b.iter(|| {
            let mut last = SimTime::ZERO;
            for _ in 0..8 {
                if let Some(entry) = cal.pop() {
                    last = entry.at;
                    cal.push(entry.at + simcore::SimDuration::from_hours(1), entry.event);
                }
            }
            black_box(last)
        })
    });

    // One hot-row read per queued task: the SoA column fetch that
    // replaced pulling whole `JobState`s through the old `BTreeMap`.
    group.bench_function("arena_job_row", |b| {
        b.iter(|| {
            let mut gpu = 0.0f64;
            for t in &queue {
                if let Some(row) = jobs.hot(&t.job) {
                    gpu += row.max_task_gpu_share + row.task_count as f64;
                }
            }
            black_box(gpu)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
