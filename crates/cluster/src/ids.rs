//! Identifier newtypes shared across the workspace.
//!
//! Defined here (the lowest crate that deals with placement) so that
//! both `workload` and the schedulers can refer to jobs, tasks and
//! servers without depending on each other.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a job within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

/// Identifies a task as (job, index-within-job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId {
    /// The owning job.
    pub job: JobId,
    /// Index of this task within the job's task list.
    pub idx: u16,
}

/// Identifies a server within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl TaskId {
    /// Convenience constructor.
    pub fn new(job: JobId, idx: u16) -> Self {
        TaskId { job, idx }
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.t{}", self.job, self.idx)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_orders_by_job_then_index() {
        let a = TaskId::new(JobId(1), 5);
        let b = TaskId::new(JobId(2), 0);
        let c = TaskId::new(JobId(1), 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId::new(JobId(3), 2).to_string(), "J3.t2");
        assert_eq!(ServerId(7).to_string(), "S7");
    }
}
