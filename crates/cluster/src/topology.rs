//! Inter-server network topology.
//!
//! The paper "only considers the bandwidth cost without considering
//! the cluster network topology" (§5, limitation 3) — its flat model
//! is [`Topology::Flat`]. We additionally implement the future-work
//! item: a two-level tree ([`Topology::Tree`]) where cross-rack links
//! are oversubscribed, so transfers between racks see less bandwidth.
//! An ablation bench compares the two.

use crate::ids::ServerId;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// How bytes move between servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Every server pair enjoys the same bandwidth. Intra-server
    /// traffic (same server) moves at `intra_mbps`, which models
    /// NVLink/PCIe and is effectively free by comparison.
    Flat {
        /// Inter-server bandwidth, MB/s.
        inter_mbps: f64,
        /// Intra-server (GPU-to-GPU) bandwidth, MB/s.
        intra_mbps: f64,
    },
    /// Two-level tree: servers are grouped into racks of `rack_size`.
    /// Same-rack pairs get `rack_mbps`; cross-rack pairs get
    /// `rack_mbps / oversubscription`.
    Tree {
        /// Servers per rack.
        rack_size: usize,
        /// In-rack bandwidth, MB/s.
        rack_mbps: f64,
        /// Intra-server bandwidth, MB/s.
        intra_mbps: f64,
        /// Core-link oversubscription factor (≥ 1).
        oversubscription: f64,
    },
}

impl Topology {
    /// The paper's flat model with defaults calibrated to 10 GbE
    /// (1250 MB/s) inter-server and NVLink-class intra-server speeds.
    pub fn default_flat() -> Topology {
        Topology::Flat {
            inter_mbps: 1250.0,
            intra_mbps: 25_000.0,
        }
    }

    /// Bandwidth available between two servers, MB/s.
    pub fn bandwidth_mbps(&self, a: ServerId, b: ServerId) -> f64 {
        match *self {
            Topology::Flat {
                inter_mbps,
                intra_mbps,
            } => {
                if a == b {
                    intra_mbps
                } else {
                    inter_mbps
                }
            }
            Topology::Tree {
                rack_size,
                rack_mbps,
                intra_mbps,
                oversubscription,
            } => {
                if a == b {
                    intra_mbps
                } else if (a.0 as usize) / rack_size == (b.0 as usize) / rack_size {
                    rack_mbps
                } else {
                    rack_mbps / oversubscription.max(1.0)
                }
            }
        }
    }

    /// Time to move `mb` megabytes between the two servers.
    pub fn transfer_time(&self, a: ServerId, b: ServerId, mb: f64) -> SimDuration {
        let bw = self.bandwidth_mbps(a, b);
        if bw <= 0.0 || mb <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(mb / bw)
    }

    /// True when the pair crosses a server boundary (and therefore
    /// counts toward the paper's bandwidth-cost objective `g_3`).
    pub fn is_remote(&self, a: ServerId, b: ServerId) -> bool {
        a != b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_distinguishes_local_and_remote() {
        let t = Topology::Flat {
            inter_mbps: 100.0,
            intra_mbps: 1000.0,
        };
        assert_eq!(t.bandwidth_mbps(ServerId(0), ServerId(0)), 1000.0);
        assert_eq!(t.bandwidth_mbps(ServerId(0), ServerId(1)), 100.0);
        assert_eq!(
            t.transfer_time(ServerId(0), ServerId(1), 50.0),
            SimDuration::from_secs_f64(0.5)
        );
        assert!(!t.is_remote(ServerId(2), ServerId(2)));
        assert!(t.is_remote(ServerId(2), ServerId(3)));
    }

    #[test]
    fn tree_applies_oversubscription_across_racks() {
        let t = Topology::Tree {
            rack_size: 4,
            rack_mbps: 1000.0,
            intra_mbps: 10_000.0,
            oversubscription: 4.0,
        };
        // Servers 0-3 are rack 0; 4-7 rack 1.
        assert_eq!(t.bandwidth_mbps(ServerId(0), ServerId(3)), 1000.0);
        assert_eq!(t.bandwidth_mbps(ServerId(3), ServerId(4)), 250.0);
        assert_eq!(t.bandwidth_mbps(ServerId(5), ServerId(5)), 10_000.0);
    }

    #[test]
    fn zero_transfer_is_instant() {
        let t = Topology::default_flat();
        assert_eq!(
            t.transfer_time(ServerId(0), ServerId(1), 0.0),
            SimDuration::ZERO
        );
    }
}
