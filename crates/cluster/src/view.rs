//! Read views over cluster state and a copy-on-write overlay.
//!
//! Schedulers plan speculatively: they "virtually place" tasks, test
//! overload, roll back, and only then emit actions. The seed did this
//! by cloning the entire [`Cluster`] every round — O(servers + placed
//! tasks) per decision. [`ClusterOverlay`] replaces that with a
//! copy-on-write view: reads fall through to the base cluster, writes
//! copy only the touched server, and the overloaded-server set is
//! carried over from the base's incremental index and updated in
//! place. Placement logic is generic over [`ClusterView`], so the
//! same code serves the real cluster (tests, baselines) and the
//! overlay (the MLF-H / MLF-RL hot path).

use crate::ids::{ServerId, TaskId};
use crate::resources::ResourceVec;
use crate::server::{Server, TaskPlacement};
use crate::state::{Cluster, PlaceError};
use crate::topology::Topology;
use std::collections::{BTreeMap, BTreeSet};

/// Read-only access to (possibly speculative) cluster state.
pub trait ClusterView {
    /// Number of servers.
    fn server_count(&self) -> usize;

    /// Immutable access to a server.
    fn server(&self, id: ServerId) -> &Server;

    /// The inter-server topology.
    fn topology(&self) -> &Topology;

    /// Where a task currently runs, if placed.
    fn locate(&self, task: TaskId) -> Option<ServerId>;

    /// Append the ids of servers overloaded at `h_r`, in id order.
    fn overloaded_into(&self, h_r: f64, out: &mut Vec<ServerId>);

    /// Ids of servers overloaded at `h_r`, in id order.
    fn overloaded_servers(&self, h_r: f64) -> Vec<ServerId> {
        let mut out = Vec::new();
        self.overloaded_into(h_r, &mut out);
        out
    }
}

impl ClusterView for Cluster {
    fn server_count(&self) -> usize {
        Cluster::server_count(self)
    }

    fn server(&self, id: ServerId) -> &Server {
        Cluster::server(self, id)
    }

    fn topology(&self) -> &Topology {
        Cluster::topology(self)
    }

    fn locate(&self, task: TaskId) -> Option<ServerId> {
        Cluster::locate(self, task)
    }

    fn overloaded_into(&self, h_r: f64, out: &mut Vec<ServerId>) {
        if h_r == self.tracked_overload_threshold() {
            out.extend(self.overloaded_set().iter().copied());
        } else {
            out.extend(
                self.servers()
                    .iter()
                    .filter(|s| s.is_overloaded(h_r))
                    .map(|s| s.id),
            );
        }
    }
}

/// A copy-on-write speculative view over a base [`Cluster`].
///
/// Mutations (`place`, `remove`, `migrate`) copy the touched server
/// into the overlay on first write and maintain a task→server index
/// delta plus an incrementally-updated overloaded-server set at the
/// overlay's threshold. Dropping the overlay discards the
/// speculation; the base cluster is never modified.
#[derive(Debug, Clone)]
pub struct ClusterOverlay<'a> {
    base: &'a Cluster,
    h_r: f64,
    /// Copy-on-write server states, only for servers written to.
    touched: BTreeMap<ServerId, Server>,
    /// Tasks placed (or moved) by the speculation.
    index_add: BTreeMap<TaskId, ServerId>,
    /// Tasks removed from their base placement by the speculation.
    index_del: BTreeSet<TaskId>,
    /// Servers overloaded at `h_r` under the speculative state.
    overloaded: BTreeSet<ServerId>,
}

impl<'a> ClusterOverlay<'a> {
    /// Start a speculation over `base`, tracking overload at `h_r`.
    /// Seeding the overload set is O(|overloaded|) when `h_r` matches
    /// the base's tracked threshold, O(servers) single-compare scans
    /// otherwise — never a full utilization recomputation.
    pub fn new(base: &'a Cluster, h_r: f64) -> Self {
        let overloaded: BTreeSet<ServerId> = if h_r == base.tracked_overload_threshold() {
            base.overloaded_set().clone()
        } else {
            base.servers()
                .iter()
                .filter(|s| s.is_overloaded(h_r))
                .map(|s| s.id)
                .collect()
        };
        ClusterOverlay {
            base,
            h_r,
            touched: BTreeMap::new(),
            index_add: BTreeMap::new(),
            index_del: BTreeSet::new(),
            overloaded,
        }
    }

    /// The threshold this overlay's overload set tracks.
    pub fn tracked_overload_threshold(&self) -> f64 {
        self.h_r
    }

    /// Number of servers written to so far (diagnostics).
    pub fn touched_count(&self) -> usize {
        self.touched.len()
    }

    /// Mutable access to a server, copying it from the base on first
    /// write.
    fn server_mut(&mut self, id: ServerId) -> &mut Server {
        self.touched
            .entry(id)
            .or_insert_with(|| self.base.server(id).clone())
    }

    fn sync_overload(&mut self, id: ServerId) {
        if self.server(id).is_overloaded(self.h_r) {
            self.overloaded.insert(id);
        } else {
            self.overloaded.remove(&id);
        }
    }

    /// Speculatively place `task` on `server`'s least-loaded GPU.
    pub fn place(
        &mut self,
        task: TaskId,
        server: ServerId,
        demand: ResourceVec,
        gpu_share: f64,
    ) -> Result<usize, PlaceError> {
        if let Some(existing) = self.locate(task) {
            return Err(PlaceError::AlreadyPlaced(existing));
        }
        if server.0 as usize >= self.base.server_count() {
            return Err(PlaceError::NoSuchServer);
        }
        if !self.server(server).is_up() {
            return Err(PlaceError::ServerDown);
        }
        let gpu = self.server_mut(server).place(task, demand, gpu_share);
        self.index_add.insert(task, server);
        self.index_del.remove(&task);
        self.sync_overload(server);
        Ok(gpu)
    }

    /// Speculatively remove `task` from wherever the view has it.
    pub fn remove(&mut self, task: TaskId) -> Option<(ServerId, TaskPlacement)> {
        let server = self.locate(task)?;
        let p = self.server_mut(server).remove(task)?;
        self.index_add.remove(&task);
        if self.base.locate(task).is_some() {
            // The base also places this task (directly, or before a
            // speculative move); shadow it so it stays gone.
            self.index_del.insert(task);
        }
        self.sync_overload(server);
        Some((server, p))
    }

    /// Speculatively move a placed task to `dst` (keeping its demand).
    /// Transfer accounting is the real cluster's job; the overlay only
    /// models state. A refused move (unknown or down destination)
    /// leaves the task where it was.
    pub fn migrate(&mut self, task: TaskId, dst: ServerId) -> Result<usize, PlaceError> {
        let (src, p) = self.remove(task).ok_or(PlaceError::NoSuchServer)?;
        match self.place(task, dst, p.demand, p.gpu_share) {
            Ok(gpu) => Ok(gpu),
            Err(e) => {
                // The source slot was freed by the remove above, so
                // the restore cannot be refused; the overlay is
                // speculative, so even a refusal must surface as the
                // original error rather than abort.
                let _ = self.place(task, src, p.demand, p.gpu_share);
                Err(e)
            }
        }
    }
}

impl ClusterView for ClusterOverlay<'_> {
    fn server_count(&self) -> usize {
        self.base.server_count()
    }

    fn server(&self, id: ServerId) -> &Server {
        self.touched
            .get(&id)
            .unwrap_or_else(|| self.base.server(id))
    }

    fn topology(&self) -> &Topology {
        self.base.topology()
    }

    fn locate(&self, task: TaskId) -> Option<ServerId> {
        if let Some(&s) = self.index_add.get(&task) {
            return Some(s);
        }
        if self.index_del.contains(&task) {
            return None;
        }
        self.base.locate(task)
    }

    fn overloaded_into(&self, h_r: f64, out: &mut Vec<ServerId>) {
        if h_r == self.h_r {
            out.extend(self.overloaded.iter().copied());
        } else {
            out.extend(
                (0..self.server_count())
                    .map(|i| ServerId(i as u32))
                    .filter(|&id| self.server(id).is_overloaded(h_r)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::JobId;
    use crate::state::ClusterConfig;
    use crate::topology::Topology;

    fn tid(j: u32, i: u16) -> TaskId {
        TaskId::new(JobId(j), i)
    }

    fn base() -> Cluster {
        let mut c = Cluster::new(&ClusterConfig {
            servers: 4,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 8.0,
            memory_gb: 64.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        });
        c.place(
            tid(1, 0),
            ServerId(0),
            ResourceVec::new(0.5, 1.0, 4.0, 50.0),
            0.5,
        )
        .unwrap();
        c.place(
            tid(1, 1),
            ServerId(1),
            ResourceVec::new(0.5, 1.0, 4.0, 50.0),
            0.5,
        )
        .unwrap();
        c
    }

    #[test]
    fn reads_fall_through_to_base() {
        let c = base();
        let v = ClusterOverlay::new(&c, 0.9);
        assert_eq!(v.server_count(), 4);
        assert_eq!(v.locate(tid(1, 0)), Some(ServerId(0)));
        assert_eq!(v.server(ServerId(0)).task_count(), 1);
        assert_eq!(v.touched_count(), 0);
    }

    #[test]
    fn writes_copy_only_touched_servers() {
        let c = base();
        let mut v = ClusterOverlay::new(&c, 0.9);
        v.place(tid(2, 0), ServerId(2), ResourceVec::splat(1.0), 0.5)
            .unwrap();
        assert_eq!(v.touched_count(), 1);
        assert_eq!(v.locate(tid(2, 0)), Some(ServerId(2)));
        assert_eq!(v.server(ServerId(2)).task_count(), 1);
        // The base never sees speculative writes.
        assert_eq!(c.locate(tid(2, 0)), None);
        assert_eq!(c.server(ServerId(2)).task_count(), 0);
    }

    #[test]
    fn remove_shadows_base_placements() {
        let c = base();
        let mut v = ClusterOverlay::new(&c, 0.9);
        let (srv, p) = v.remove(tid(1, 0)).unwrap();
        assert_eq!(srv, ServerId(0));
        assert!((p.gpu_share - 0.5).abs() < 1e-12);
        assert_eq!(v.locate(tid(1, 0)), None);
        assert_eq!(v.server(ServerId(0)).task_count(), 0);
        assert_eq!(c.locate(tid(1, 0)), Some(ServerId(0)));
        // Re-placing after a shadow-remove works (rollback pattern).
        v.place(tid(1, 0), ServerId(3), p.demand, p.gpu_share)
            .unwrap();
        assert_eq!(v.locate(tid(1, 0)), Some(ServerId(3)));
    }

    #[test]
    fn double_place_is_an_error() {
        let c = base();
        let mut v = ClusterOverlay::new(&c, 0.9);
        assert_eq!(
            v.place(tid(1, 0), ServerId(3), ResourceVec::splat(0.1), 0.1),
            Err(PlaceError::AlreadyPlaced(ServerId(0)))
        );
    }

    #[test]
    fn overload_set_tracks_speculative_state() {
        let c = base();
        let mut v = ClusterOverlay::new(&c, 0.9);
        assert!(v.overloaded_servers(0.9).is_empty());
        // Overload server 3's memory speculatively.
        v.place(
            tid(3, 0),
            ServerId(3),
            ResourceVec::new(0.0, 0.0, 60.0, 0.0),
            0.0,
        )
        .unwrap();
        assert_eq!(v.overloaded_servers(0.9), vec![ServerId(3)]);
        v.remove(tid(3, 0)).unwrap();
        assert!(v.overloaded_servers(0.9).is_empty());
        // The base index is untouched.
        assert!(c.overloaded_servers(0.9).is_empty());
    }

    #[test]
    fn overlay_seeds_from_overloaded_base() {
        let mut c = base();
        c.place(
            tid(4, 0),
            ServerId(2),
            ResourceVec::new(0.0, 7.9, 0.0, 0.0),
            0.0,
        )
        .unwrap();
        let mut v = ClusterOverlay::new(&c, 0.9);
        assert_eq!(v.overloaded_servers(0.9), vec![ServerId(2)]);
        // Shedding the load speculatively clears the overlay's set.
        v.remove(tid(4, 0)).unwrap();
        assert!(v.overloaded_servers(0.9).is_empty());
        assert_eq!(c.overloaded_servers(0.9), vec![ServerId(2)]);
    }

    #[test]
    fn migrate_moves_within_overlay() {
        let c = base();
        let mut v = ClusterOverlay::new(&c, 0.9);
        v.migrate(tid(1, 0), ServerId(3)).unwrap();
        assert_eq!(v.locate(tid(1, 0)), Some(ServerId(3)));
        assert_eq!(v.server(ServerId(0)).task_count(), 0);
        assert_eq!(v.server(ServerId(3)).task_count(), 1);
        assert_eq!(c.locate(tid(1, 0)), Some(ServerId(0)));
    }

    #[test]
    fn remove_after_migrate_does_not_resurrect_base_placement() {
        let c = base();
        let mut v = ClusterOverlay::new(&c, 0.9);
        v.migrate(tid(1, 0), ServerId(3)).unwrap();
        v.remove(tid(1, 0)).unwrap();
        assert_eq!(v.locate(tid(1, 0)), None);
        assert_eq!(c.locate(tid(1, 0)), Some(ServerId(0)));
    }

    #[test]
    fn overlay_refuses_down_servers_and_restores_failed_migrations() {
        let mut c = base();
        c.fail_server(ServerId(3), None);
        let mut v = ClusterOverlay::new(&c, 0.9);
        assert_eq!(
            v.place(tid(5, 0), ServerId(3), ResourceVec::splat(0.1), 0.1),
            Err(PlaceError::ServerDown)
        );
        // A migration to the down server keeps the task on its source.
        assert_eq!(
            v.migrate(tid(1, 0), ServerId(3)),
            Err(PlaceError::ServerDown)
        );
        assert_eq!(v.locate(tid(1, 0)), Some(ServerId(0)));
        assert_eq!(v.server(ServerId(0)).task_count(), 1);
    }

    #[test]
    fn non_tracked_threshold_falls_back_to_scan() {
        let c = base();
        let v = ClusterOverlay::new(&c, 0.9);
        // At a 1% threshold both loaded servers count as overloaded.
        assert_eq!(v.overloaded_servers(0.01), vec![ServerId(0), ServerId(1)]);
    }
}
