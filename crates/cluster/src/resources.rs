//! Multi-dimensional resource vectors.
//!
//! The paper considers `M` resource types per server: "GPU, CPU,
//! memory, and bandwidth" (§3.3.2), with utilization vectors
//! `U_s^t = (u_1, …, u_M)` and Euclidean-distance matching against
//! ideal points (the RIAL method of \[47\]). [`ResourceVec`] implements
//! that vector algebra.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Sub, SubAssign};

/// Number of modelled resource dimensions.
pub const NUM_RESOURCES: usize = 4;

/// The modelled resource types, in vector order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Aggregate GPU compute (sum over the server's GPUs).
    GpuCompute = 0,
    /// CPU cores.
    Cpu = 1,
    /// Memory (GB).
    Memory = 2,
    /// NIC bandwidth (MB/s of sustained traffic).
    NetBw = 3,
}

impl Resource {
    /// All resources in vector order.
    pub const ALL: [Resource; NUM_RESOURCES] = [
        Resource::GpuCompute,
        Resource::Cpu,
        Resource::Memory,
        Resource::NetBw,
    ];
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::GpuCompute => "gpu",
            Resource::Cpu => "cpu",
            Resource::Memory => "mem",
            Resource::NetBw => "bw",
        };
        f.write_str(s)
    }
}

/// A fixed-size vector over the [`Resource`] dimensions.
///
/// Used both for absolute quantities (capacity, load, demand) and for
/// dimensionless utilizations (load ÷ capacity).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVec(pub [f64; NUM_RESOURCES]);

impl ResourceVec {
    /// The zero vector.
    pub const ZERO: ResourceVec = ResourceVec([0.0; NUM_RESOURCES]);

    /// Construct from named components.
    pub fn new(gpu: f64, cpu: f64, mem: f64, bw: f64) -> Self {
        ResourceVec([gpu, cpu, mem, bw])
    }

    /// All components set to `v`.
    pub fn splat(v: f64) -> Self {
        ResourceVec([v; NUM_RESOURCES])
    }

    /// Component accessor.
    pub fn get(&self, r: Resource) -> f64 {
        self.0[r as usize]
    }

    /// Component mutator.
    pub fn set(&mut self, r: Resource, v: f64) {
        self.0[r as usize] = v;
    }

    /// Euclidean norm — the paper's per-server "overload degree"
    /// `O_s^t = ||U_s^t||` (§3.5).
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Euclidean distance to `other` — the RIAL matching metric.
    pub fn distance(&self, other: &ResourceVec) -> f64 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Largest component.
    pub fn max_component(&self) -> f64 {
        self.0.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Component-wise division; divisor components of zero yield zero
    /// (a resource with no capacity is treated as unused rather than
    /// infinitely loaded — servers without such capacity never receive
    /// demand on that dimension).
    pub fn div_elem(&self, denom: &ResourceVec) -> ResourceVec {
        let mut out = [0.0; NUM_RESOURCES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = if denom.0[i] > 0.0 {
                self.0[i] / denom.0[i]
            } else {
                0.0
            };
        }
        ResourceVec(out)
    }

    /// Component-wise minimum.
    pub fn min_elem(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = [0.0; NUM_RESOURCES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i].min(other.0[i]);
        }
        ResourceVec(out)
    }

    /// Component-wise maximum.
    pub fn max_elem(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = [0.0; NUM_RESOURCES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i].max(other.0[i]);
        }
        ResourceVec(out)
    }

    /// True when every component of `self` is ≤ the matching component
    /// of `other` (within `eps` slack for float accumulation error).
    pub fn fits_within(&self, other: &ResourceVec, eps: f64) -> bool {
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(a, b)| *a <= *b + eps)
    }

    /// Clamp every component to be ≥ 0. Load bookkeeping subtracts
    /// demands; tiny negative residue from float error is squashed.
    pub fn clamp_non_negative(&mut self) {
        for v in &mut self.0 {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// True when all components are finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }

    /// Sum of components (used by fair-share baselines as a scalar
    /// "dominant-ish" demand proxy).
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl Index<Resource> for ResourceVec {
    type Output = f64;
    fn index(&self, r: Resource) -> &f64 {
        &self.0[r as usize]
    }
}

impl IndexMut<Resource> for ResourceVec {
    fn index_mut(&mut self, r: Resource) -> &mut f64 {
        &mut self.0[r as usize]
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        for i in 0..NUM_RESOURCES {
            self.0[i] += rhs.0[i];
        }
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    fn sub(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self;
        out -= rhs;
        out
    }
}

impl SubAssign for ResourceVec {
    fn sub_assign(&mut self, rhs: ResourceVec) {
        for i in 0..NUM_RESOURCES {
            self.0[i] -= rhs.0[i];
        }
    }
}

impl Mul<f64> for ResourceVec {
    type Output = ResourceVec;
    fn mul(self, k: f64) -> ResourceVec {
        let mut out = self;
        for v in &mut out.0 {
            *v *= k;
        }
        out
    }
}

impl Div<f64> for ResourceVec {
    type Output = ResourceVec;
    fn div(self, k: f64) -> ResourceVec {
        let mut out = self;
        for v in &mut out.0 {
            *v /= k;
        }
        out
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(gpu {:.2}, cpu {:.2}, mem {:.2}, bw {:.2})",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_distance() {
        let a = ResourceVec::new(3.0, 4.0, 0.0, 0.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        let b = ResourceVec::new(0.0, 0.0, 0.0, 0.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn div_elem_handles_zero_capacity() {
        let load = ResourceVec::new(2.0, 1.0, 0.0, 4.0);
        let cap = ResourceVec::new(4.0, 0.0, 8.0, 8.0);
        let u = load.div_elem(&cap);
        assert_eq!(u.get(Resource::GpuCompute), 0.5);
        assert_eq!(u.get(Resource::Cpu), 0.0); // zero capacity -> unused
        assert_eq!(u.get(Resource::Memory), 0.0);
        assert_eq!(u.get(Resource::NetBw), 0.5);
    }

    #[test]
    fn fits_within_with_eps() {
        let d = ResourceVec::new(1.0, 1.0, 1.0, 1.0);
        let c = ResourceVec::new(1.0, 1.0, 1.0, 1.0 - 1e-12);
        assert!(d.fits_within(&c, 1e-9));
        let c2 = ResourceVec::new(0.5, 1.0, 1.0, 1.0);
        assert!(!d.fits_within(&c2, 1e-9));
    }

    #[test]
    fn arithmetic() {
        let a = ResourceVec::new(1.0, 2.0, 3.0, 4.0);
        let b = ResourceVec::new(0.5, 0.5, 0.5, 0.5);
        assert_eq!((a + b).get(Resource::Cpu), 2.5);
        assert_eq!((a - b).get(Resource::NetBw), 3.5);
        assert_eq!((a * 2.0).get(Resource::GpuCompute), 2.0);
        assert_eq!((a / 2.0).get(Resource::Memory), 1.5);
        let mut c = a;
        c -= a;
        c.clamp_non_negative();
        assert_eq!(c, ResourceVec::ZERO);
    }

    #[test]
    fn min_max_elem() {
        let a = ResourceVec::new(1.0, 5.0, 2.0, 8.0);
        let b = ResourceVec::new(3.0, 1.0, 2.0, 4.0);
        assert_eq!(a.min_elem(&b), ResourceVec::new(1.0, 1.0, 2.0, 4.0));
        assert_eq!(a.max_elem(&b), ResourceVec::new(3.0, 5.0, 2.0, 8.0));
        assert_eq!(a.max_component(), 8.0);
    }

    #[test]
    fn clamp_negative_components() {
        let mut a = ResourceVec::new(-0.1, 2.0, -3.0, 0.0);
        a.clamp_non_negative();
        assert_eq!(a, ResourceVec::new(0.0, 2.0, 0.0, 0.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn vec_strategy() -> impl Strategy<Value = ResourceVec> {
        proptest::array::uniform4(0.0f64..1000.0).prop_map(ResourceVec)
    }

    proptest! {
        /// Euclidean distance is a metric: symmetric, zero on identity,
        /// and satisfies the triangle inequality.
        #[test]
        fn distance_is_a_metric(a in vec_strategy(), b in vec_strategy(), c in vec_strategy()) {
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
            prop_assert!(a.distance(&a) < 1e-12);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        /// Addition then subtraction round-trips (within float error).
        #[test]
        fn add_sub_roundtrip(a in vec_strategy(), b in vec_strategy()) {
            let r = (a + b) - b;
            for i in 0..NUM_RESOURCES {
                prop_assert!((r.0[i] - a.0[i]).abs() < 1e-6);
            }
        }

        /// Utilization of load ≤ capacity is ≤ 1 in every component.
        #[test]
        fn utilization_bounded(cap in vec_strategy(), frac in proptest::array::uniform4(0.0f64..1.0)) {
            let load = ResourceVec([
                cap.0[0] * frac[0], cap.0[1] * frac[1],
                cap.0[2] * frac[2], cap.0[3] * frac[3],
            ]);
            let u = load.div_elem(&cap);
            for i in 0..NUM_RESOURCES {
                prop_assert!(u.0[i] <= 1.0 + 1e-9);
                prop_assert!(u.0[i] >= 0.0);
            }
        }
    }
}
