//! A single server: capacity, per-GPU loads, and the tasks placed on it.

use crate::ids::{ServerId, TaskId};
use crate::resources::{Resource, ResourceVec};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::BTreeMap;

/// Availability of a server. Schedulers only ever place onto `Up`
/// servers: `can_host` returns false for the other states, which
/// gates every placement path (RIAL host selection, RL candidate
/// generation and all baselines admit through `can_host`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HealthState {
    /// Healthy and accepting placements.
    #[default]
    Up,
    /// Crashed: all placements were evicted; no new placements until
    /// recovery (expected at `until` when known).
    Down {
        /// Expected recovery time, if the fault process knows it.
        until: Option<SimTime>,
    },
    /// Administratively draining: existing tasks keep running but no
    /// new placements are admitted.
    Draining,
}

/// Where and how a task is placed on a server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskPlacement {
    /// The task's resource demand (absolute units).
    pub demand: ResourceVec,
    /// GPU compute demand, in fractions of one GPU (1.0 = a full GPU).
    /// This is the slice of `demand`'s GPU dimension that lands on a
    /// single physical GPU — tasks never span GPUs in this model.
    pub gpu_share: f64,
    /// Index of the hosting GPU within the server.
    pub gpu: usize,
}

/// One server in the cluster.
///
/// Loads are tracked incrementally on placement/removal; the invariant
/// `load == Σ task demands` is checked by `debug_assert` and by the
/// property tests in this module. The utilization vector and the peak
/// (max over resource dimensions and GPUs) are cached and refreshed on
/// every mutation, so overload checks on the scheduler hot path are a
/// single comparison instead of a divide-and-scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Server {
    /// This server's identity.
    pub id: ServerId,
    /// Absolute capacity per resource dimension. The GPU dimension
    /// equals `gpu_count × per-GPU capacity`.
    pub capacity: ResourceVec,
    /// Compute capacity of each individual GPU (normalized; 1.0 =
    /// one full V100-class device).
    pub gpu_capacity: f64,
    /// Current absolute load per resource dimension.
    load: ResourceVec,
    /// Current compute load per GPU.
    gpu_load: Vec<f64>,
    /// Tasks currently placed here. BTreeMap for deterministic
    /// iteration order.
    tasks: BTreeMap<TaskId, TaskPlacement>,
    /// Cached `load ÷ capacity`; refreshed on every load mutation.
    util: ResourceVec,
    /// Cached max over `util`'s dimensions and all GPU utilizations.
    /// `is_overloaded(h_r)` is exactly `peak_util > h_r`.
    peak_util: f64,
    /// Availability; `can_host` is false unless `Up`.
    health: HealthState,
}

impl Server {
    /// Create an empty server with `gpu_count` GPUs of `gpu_capacity`
    /// each, plus the given CPU / memory / NIC capacities.
    pub fn new(
        id: ServerId,
        gpu_count: usize,
        gpu_capacity: f64,
        cpu: f64,
        mem: f64,
        bw: f64,
    ) -> Self {
        Server {
            id,
            capacity: ResourceVec::new(gpu_count as f64 * gpu_capacity, cpu, mem, bw),
            gpu_capacity,
            load: ResourceVec::ZERO,
            gpu_load: vec![0.0; gpu_count],
            tasks: BTreeMap::new(),
            util: ResourceVec::ZERO,
            peak_util: 0.0,
            health: HealthState::Up,
        }
    }

    /// Current availability.
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Set availability. Does not touch placements — eviction on
    /// failure is the cluster's job ([`crate::Cluster::fail_server`]).
    pub fn set_health(&mut self, health: HealthState) {
        self.health = health;
    }

    /// True when the server is `Up` (the only state accepting new
    /// placements).
    pub fn is_up(&self) -> bool {
        matches!(self.health, HealthState::Up)
    }

    /// Refresh the cached utilization vector and peak after a load
    /// mutation. O(resources + GPUs), i.e. ~8 ops per mutation.
    fn refresh_util_cache(&mut self) {
        self.util = self.load.div_elem(&self.capacity);
        let mut peak = 0.0f64;
        for &r in Resource::ALL.iter() {
            peak = peak.max(self.util.get(r));
        }
        if self.gpu_capacity > 0.0 {
            for &g in &self.gpu_load {
                peak = peak.max(g / self.gpu_capacity);
            }
        }
        self.peak_util = peak;
    }

    /// Number of physical GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpu_load.len()
    }

    /// Absolute load vector.
    pub fn load(&self) -> ResourceVec {
        self.load
    }

    /// Utilization vector `U_s^t = load ÷ capacity` (cached).
    pub fn utilization(&self) -> ResourceVec {
        self.util
    }

    /// Max utilization over resource dimensions and GPUs (cached).
    /// The server is overloaded at `h_r` iff this exceeds `h_r`.
    pub fn peak_utilization(&self) -> f64 {
        self.peak_util
    }

    /// The paper's overload degree `O_s^t = ||U_s^t||`.
    pub fn overload_degree(&self) -> f64 {
        self.utilization().norm()
    }

    /// Compute load on GPU `g` (0 for an out-of-range index).
    pub fn gpu_load(&self, g: usize) -> f64 {
        self.gpu_load.get(g).copied().unwrap_or(0.0)
    }

    /// Utilization of GPU `g`.
    pub fn gpu_utilization(&self, g: usize) -> f64 {
        if self.gpu_capacity > 0.0 {
            self.gpu_load(g) / self.gpu_capacity
        } else {
            0.0
        }
    }

    /// Index of the least-loaded GPU (ties broken by lowest index, for
    /// determinism). The paper schedules each task "to the least-loaded
    /// GPU in the selected server".
    pub fn least_loaded_gpu(&self) -> usize {
        let mut best = 0;
        let mut best_load = f64::INFINITY;
        for (g, &load) in self.gpu_load.iter().enumerate() {
            if load < best_load {
                best = g;
                best_load = load;
            }
        }
        best
    }

    /// GPUs whose utilization exceeds `h_r`.
    pub fn overloaded_gpus(&self, h_r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.overloaded_gpus_into(h_r, &mut out);
        out
    }

    /// [`Server::overloaded_gpus`] into a reused buffer (cleared
    /// first) — the allocation-free variant for scheduler hot paths.
    pub fn overloaded_gpus_into(&self, h_r: f64, out: &mut Vec<usize>) {
        out.clear();
        out.extend((0..self.gpu_load.len()).filter(|&g| self.gpu_utilization(g) > h_r));
    }

    /// True when any resource dimension exceeds `h_r` utilization
    /// ("when at least one type of resources in a server are
    /// overloaded, we consider that this server is overloaded").
    pub fn is_overloaded(&self, h_r: f64) -> bool {
        self.peak_util > h_r
    }

    /// Resource dimensions currently over `h_r`.
    pub fn overloaded_resources(&self, h_r: f64) -> Vec<Resource> {
        let mut out = Vec::new();
        self.overloaded_resources_into(h_r, &mut out);
        out
    }

    /// [`Server::overloaded_resources`] into a reused buffer (cleared
    /// first) — the allocation-free variant for scheduler hot paths.
    pub fn overloaded_resources_into(&self, h_r: f64, out: &mut Vec<Resource>) {
        out.clear();
        let u = self.utilization();
        out.extend(Resource::ALL.iter().copied().filter(|&r| u.get(r) > h_r));
    }

    /// Would placing a task with this demand keep every resource and
    /// the least-loaded GPU at or below `h_r` utilization? Mirrors the
    /// paper's host-selection constraint ("will not be overloaded (on
    /// each resource and its least-loaded GPU) by hosting the task").
    /// Down or draining servers never host new tasks.
    pub fn can_host(&self, demand: &ResourceVec, gpu_share: f64, h_r: f64) -> bool {
        if !self.is_up() {
            return false;
        }
        let budget = self.capacity * h_r;
        if !(self.load + *demand).fits_within(&budget, 1e-9) {
            return false;
        }
        let g = self.least_loaded_gpu();
        self.gpu_load(g) + gpu_share <= self.gpu_capacity * h_r + 1e-9
    }

    /// Place `task` on the least-loaded GPU. Returns the chosen GPU.
    /// Does not check `can_host` — callers that want admission control
    /// must check first (overload is a legal, modelled state).
    pub fn place(&mut self, task: TaskId, demand: ResourceVec, gpu_share: f64) -> usize {
        let g = self.least_loaded_gpu();
        self.place_on_gpu(task, demand, gpu_share, g);
        g
    }

    /// Place `task` on a specific GPU.
    ///
    /// # Panics
    /// Panics if the task is already placed here or `gpu` is out of
    /// range — both indicate scheduler bugs.
    pub fn place_on_gpu(&mut self, task: TaskId, demand: ResourceVec, gpu_share: f64, gpu: usize) {
        assert!(gpu < self.gpu_load.len(), "GPU index out of range");
        let prev = self.tasks.insert(
            task,
            TaskPlacement {
                demand,
                gpu_share,
                gpu,
            },
        );
        assert!(prev.is_none(), "task {task} placed twice on {}", self.id);
        self.load += demand;
        if let Some(load) = self.gpu_load.get_mut(gpu) {
            *load += gpu_share;
        }
        self.refresh_util_cache();
    }

    /// Replace a placed task's demand in place (time-varying
    /// utilization: real tasks do not draw their mean demand every
    /// minute). Keeps the task on its GPU. Returns `false` (and
    /// changes nothing) if the task is not placed here — a stale
    /// update must never abort a simulation.
    pub fn update_demand(&mut self, task: TaskId, demand: ResourceVec, gpu_share: f64) -> bool {
        let Some(p) = self.tasks.get_mut(&task) else {
            return false;
        };
        self.load -= p.demand;
        self.load += demand;
        self.load.clamp_non_negative();
        if let Some(load) = self.gpu_load.get_mut(p.gpu) {
            *load = (*load + (gpu_share - p.gpu_share)).max(0.0);
        }
        p.demand = demand;
        p.gpu_share = gpu_share;
        self.refresh_util_cache();
        true
    }

    /// Remove `task`, returning its placement record, or `None` (a
    /// no-op) if it was not placed here.
    pub fn remove(&mut self, task: TaskId) -> Option<TaskPlacement> {
        let p = self.tasks.remove(&task)?;
        self.load -= p.demand;
        self.load.clamp_non_negative();
        if let Some(load) = self.gpu_load.get_mut(p.gpu) {
            *load = (*load - p.gpu_share).max(0.0);
        }
        self.refresh_util_cache();
        Some(p)
    }

    /// The tasks placed on this server, in deterministic (id) order.
    pub fn tasks(&self) -> impl Iterator<Item = (&TaskId, &TaskPlacement)> {
        self.tasks.iter()
    }

    /// Tasks on GPU `g`.
    pub fn tasks_on_gpu(&self, g: usize) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.tasks_on_gpu_into(g, &mut out);
        out
    }

    /// Append the tasks on GPU `g` (in id order) to `out` — appends
    /// rather than clears so callers can gather several GPUs into one
    /// reused buffer.
    pub fn tasks_on_gpu_into(&self, g: usize, out: &mut Vec<TaskId>) {
        out.extend(
            self.tasks
                .iter()
                .filter(|(_, p)| p.gpu == g)
                .map(|(t, _)| *t),
        );
    }

    /// Number of tasks placed here.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Placement of a specific task, if present.
    pub fn placement(&self, task: TaskId) -> Option<&TaskPlacement> {
        self.tasks.get(&task)
    }

    /// Contention slowdown factor for GPU `g`: 1.0 when the GPU is at
    /// or under capacity, otherwise `capacity / load` (< 1). Tasks on a
    /// 2×-oversubscribed GPU run at half speed.
    pub fn gpu_speed_factor(&self, g: usize) -> f64 {
        let load = self.gpu_load(g);
        if load <= self.gpu_capacity || load <= 0.0 {
            1.0
        } else {
            self.gpu_capacity / load
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::JobId;

    fn tid(j: u32, i: u16) -> TaskId {
        TaskId::new(JobId(j), i)
    }

    fn server() -> Server {
        // 4 GPUs, 32 cores, 244 GB, 1000 MB/s — a p3.8xlarge-like box.
        Server::new(ServerId(0), 4, 1.0, 32.0, 244.0, 1000.0)
    }

    #[test]
    fn placement_updates_load_and_gpu() {
        let mut s = server();
        let d = ResourceVec::new(1.0, 4.0, 16.0, 100.0);
        let g = s.place(tid(1, 0), d, 1.0);
        assert_eq!(g, 0);
        assert_eq!(s.load(), d);
        assert_eq!(s.gpu_load(0), 1.0);
        assert_eq!(s.task_count(), 1);
        // Second placement goes to the next least-loaded GPU.
        let g2 = s.place(tid(1, 1), d, 1.0);
        assert_eq!(g2, 1);
    }

    #[test]
    fn removal_restores_empty_state() {
        let mut s = server();
        let d = ResourceVec::new(0.5, 2.0, 8.0, 50.0);
        s.place(tid(2, 0), d, 0.5);
        let p = s.remove(tid(2, 0)).unwrap();
        assert_eq!(p.demand, d);
        assert_eq!(s.load(), ResourceVec::ZERO);
        assert_eq!(s.gpu_load(0), 0.0);
        assert_eq!(s.task_count(), 0);
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn double_placement_panics() {
        let mut s = server();
        let d = ResourceVec::splat(0.1);
        s.place(tid(1, 0), d, 0.1);
        s.place(tid(1, 0), d, 0.1);
    }

    #[test]
    fn removing_absent_task_is_a_noop() {
        let mut s = server();
        assert!(s.remove(tid(9, 9)).is_none());
        assert_eq!(s.load(), ResourceVec::ZERO);
    }

    #[test]
    fn overload_detection() {
        let mut s = server();
        assert!(!s.is_overloaded(0.9));
        // Fill CPU past 90%.
        s.place(tid(1, 0), ResourceVec::new(0.0, 30.0, 0.0, 0.0), 0.0);
        assert!(s.is_overloaded(0.9));
        assert_eq!(s.overloaded_resources(0.9), vec![Resource::Cpu]);
        // GPU overload is detected even when aggregate GPU util is low.
        let mut s2 = server();
        s2.place_on_gpu(tid(1, 0), ResourceVec::new(0.95, 0.0, 0.0, 0.0), 0.95, 2);
        assert!(s2.is_overloaded(0.9));
        assert_eq!(s2.overloaded_gpus(0.9), vec![2]);
        assert!(s2.overloaded_resources(0.9).is_empty());
    }

    #[test]
    fn can_host_respects_threshold_and_gpu() {
        let mut s = server();
        assert!(s.can_host(&ResourceVec::new(1.0, 4.0, 16.0, 100.0), 0.9, 0.9));
        // Almost fill every GPU.
        for i in 0..4 {
            s.place_on_gpu(
                tid(1, i as u16),
                ResourceVec::new(0.85, 1.0, 1.0, 1.0),
                0.85,
                i,
            );
        }
        // Aggregate resources are fine but no GPU can take 0.2 more
        // under a 0.9 threshold.
        assert!(!s.can_host(&ResourceVec::new(0.2, 1.0, 1.0, 1.0), 0.2, 0.9));
        assert!(s.can_host(&ResourceVec::new(0.05, 1.0, 1.0, 1.0), 0.05, 0.9));
    }

    #[test]
    fn speed_factor_models_contention() {
        let mut s = server();
        s.place_on_gpu(tid(1, 0), ResourceVec::new(1.0, 0.0, 0.0, 0.0), 1.0, 0);
        assert_eq!(s.gpu_speed_factor(0), 1.0);
        s.place_on_gpu(tid(1, 1), ResourceVec::new(1.0, 0.0, 0.0, 0.0), 1.0, 0);
        assert_eq!(s.gpu_speed_factor(0), 0.5);
        assert_eq!(s.gpu_speed_factor(1), 1.0);
    }

    #[test]
    fn update_demand_adjusts_loads_in_place() {
        let mut s = server();
        let d = ResourceVec::new(0.5, 2.0, 8.0, 50.0);
        s.place(tid(1, 0), d, 0.5);
        // Surge to 120%.
        s.update_demand(tid(1, 0), d * 1.2, 0.6);
        assert!((s.load().get(Resource::Cpu) - 2.4).abs() < 1e-9);
        assert!((s.gpu_load(0) - 0.6).abs() < 1e-9);
        // Drop to 50%.
        s.update_demand(tid(1, 0), d * 0.5, 0.25);
        assert!((s.load().get(Resource::Memory) - 4.0).abs() < 1e-9);
        assert!((s.gpu_load(0) - 0.25).abs() < 1e-9);
        // Removal still restores empty state exactly.
        s.remove(tid(1, 0));
        assert_eq!(s.load(), ResourceVec::ZERO);
        assert_eq!(s.gpu_load(0), 0.0);
    }

    #[test]
    fn update_demand_unknown_task_is_a_noop() {
        let mut s = server();
        assert!(!s.update_demand(tid(5, 5), ResourceVec::ZERO, 0.0));
        assert_eq!(s.load(), ResourceVec::ZERO);
    }

    #[test]
    fn utilization_and_overload_degree() {
        let mut s = server();
        s.place(tid(1, 0), ResourceVec::new(2.0, 16.0, 122.0, 500.0), 1.0);
        let u = s.utilization();
        assert!((u.get(Resource::GpuCompute) - 0.5).abs() < 1e-12);
        assert!((u.get(Resource::Cpu) - 0.5).abs() < 1e-12);
        assert!((u.get(Resource::Memory) - 0.5).abs() < 1e-12);
        assert!((u.get(Resource::NetBw) - 0.5).abs() < 1e-12);
        assert!((s.overload_degree() - 1.0).abs() < 1e-12); // ||(.5,.5,.5,.5)|| = 1
    }

    #[test]
    fn down_or_draining_servers_refuse_new_tasks() {
        let mut s = server();
        let d = ResourceVec::new(0.5, 4.0, 16.0, 100.0);
        assert!(s.can_host(&d, 0.5, 0.9));
        s.set_health(HealthState::Down { until: None });
        assert!(!s.is_up());
        assert!(!s.can_host(&d, 0.5, 0.9));
        s.set_health(HealthState::Draining);
        assert!(!s.can_host(&d, 0.5, 0.9));
        s.set_health(HealthState::Up);
        assert!(s.can_host(&d, 0.5, 0.9));
    }

    #[test]
    fn tasks_on_gpu_filters() {
        let mut s = server();
        s.place_on_gpu(tid(1, 0), ResourceVec::splat(0.1), 0.1, 3);
        s.place_on_gpu(tid(1, 1), ResourceVec::splat(0.1), 0.1, 3);
        s.place_on_gpu(tid(2, 0), ResourceVec::splat(0.1), 0.1, 1);
        assert_eq!(s.tasks_on_gpu(3), vec![tid(1, 0), tid(1, 1)]);
        assert_eq!(s.tasks_on_gpu(0), Vec::<TaskId>::new());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ids::JobId;
    use proptest::prelude::*;

    proptest! {
        /// Load always equals the sum of placed task demands, under any
        /// interleaving of placements and removals.
        #[test]
        fn load_is_sum_of_demands(ops in proptest::collection::vec((0u16..64, 0.0f64..2.0, any::<bool>()), 1..200)) {
            let mut s = Server::new(ServerId(0), 8, 1.0, 64.0, 512.0, 2000.0);
            let mut live: Vec<(TaskId, ResourceVec, f64)> = Vec::new();
            for (i, (idx, amount, remove)) in ops.into_iter().enumerate() {
                if remove && !live.is_empty() {
                    let (t, _, _) = live.remove((idx as usize) % live.len());
                    s.remove(t);
                } else {
                    let t = TaskId::new(JobId(0), i as u16);
                    let d = ResourceVec::new(amount, amount * 2.0, amount * 4.0, amount * 8.0);
                    s.place(t, d, amount.min(1.0));
                    live.push((t, d, amount.min(1.0)));
                }
            }
            let mut expect = ResourceVec::ZERO;
            let mut expect_gpu = 0.0;
            for (_, d, g) in &live {
                expect += *d;
                expect_gpu += g;
            }
            for i in 0..crate::resources::NUM_RESOURCES {
                prop_assert!((s.load().0[i] - expect.0[i]).abs() < 1e-6);
            }
            let total_gpu: f64 = (0..s.gpu_count()).map(|g| s.gpu_load(g)).sum();
            prop_assert!((total_gpu - expect_gpu).abs() < 1e-6);
        }

        /// The cached utilization vector and peak always match a
        /// from-scratch recomputation, under any interleaving of
        /// placements, demand updates and removals.
        #[test]
        fn util_cache_matches_recompute(
            ops in proptest::collection::vec((0u16..64, 0.0f64..2.0, 0u8..3), 1..200),
        ) {
            let mut s = Server::new(ServerId(0), 8, 1.0, 64.0, 512.0, 2000.0);
            let mut live: Vec<TaskId> = Vec::new();
            for (i, (idx, amount, op)) in ops.into_iter().enumerate() {
                match op {
                    0 if !live.is_empty() => {
                        let t = live.remove((idx as usize) % live.len());
                        s.remove(t);
                    }
                    1 if !live.is_empty() => {
                        let t = live[(idx as usize) % live.len()];
                        let d = ResourceVec::new(amount, amount * 3.0, amount * 5.0, amount * 7.0);
                        s.update_demand(t, d, amount.min(1.0));
                    }
                    _ => {
                        let t = TaskId::new(JobId(0), i as u16);
                        let d = ResourceVec::new(amount, amount * 2.0, amount * 4.0, amount * 8.0);
                        s.place(t, d, amount.min(1.0));
                        live.push(t);
                    }
                }
                let expect_util = s.load().div_elem(&s.capacity);
                let mut expect_peak = 0.0f64;
                for r in 0..crate::resources::NUM_RESOURCES {
                    prop_assert!((s.utilization().0[r] - expect_util.0[r]).abs() < 1e-12);
                    expect_peak = expect_peak.max(expect_util.0[r]);
                }
                for g in 0..s.gpu_count() {
                    expect_peak = expect_peak.max(s.gpu_utilization(g));
                }
                prop_assert!((s.peak_utilization() - expect_peak).abs() < 1e-12);
                prop_assert_eq!(s.is_overloaded(0.9), expect_peak > 0.9);
            }
        }

        /// least_loaded_gpu always returns a GPU with the minimal load.
        #[test]
        fn least_loaded_is_minimal(loads in proptest::collection::vec(0.0f64..3.0, 1..16)) {
            let mut s = Server::new(ServerId(0), loads.len(), 1.0, 64.0, 512.0, 2000.0);
            for (g, l) in loads.iter().enumerate() {
                if *l > 0.0 {
                    s.place_on_gpu(TaskId::new(JobId(0), g as u16), ResourceVec::ZERO, *l, g);
                }
            }
            let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!((s.gpu_load(s.least_loaded_gpu()) - min).abs() < 1e-12);
        }
    }
}
