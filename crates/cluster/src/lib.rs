//! # cluster — multi-resource ML cluster model
//!
//! The substrate the paper's schedulers operate on: a set of servers,
//! each with multiple GPUs and a four-dimensional resource capacity
//! (GPU compute, CPU, memory, network bandwidth). The crate tracks
//!
//! * per-server and per-GPU load / utilization vectors (`U_s^t` in the
//!   paper, §3.3.2),
//! * overload detection against the threshold `h_r`,
//! * task placement, removal and migration (with migration byte
//!   accounting — Gandiva-style migrations are *not* free),
//! * cumulative inter-server bandwidth cost (`B_{n_i,n_j}`, the `g_3`
//!   objective of Eq. 1), and
//! * an inter-server [`Topology`] that converts bytes to transfer time
//!   (flat by default; an optional two-level tree models the paper's
//!   "network topology" future-work item).
//!
//! The crate knows nothing about ML jobs; it deals in opaque
//! [`TaskId`]s and resource demand vectors. The `workload` crate maps
//! ML tasks onto these.

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ids;
pub mod resources;
pub mod server;
pub mod state;
pub mod topology;
pub mod view;

pub use ids::{JobId, ServerId, TaskId};
pub use resources::{Resource, ResourceVec, NUM_RESOURCES};
pub use server::{HealthState, Server, TaskPlacement};
pub use state::{Cluster, ClusterConfig, ClusterSnapshot, PlaceError, DEFAULT_OVERLOAD_THRESHOLD};
pub use topology::Topology;
pub use view::{ClusterOverlay, ClusterView};
