//! Cluster state: the server fleet, the task→server index, transfer
//! accounting and migration mechanics.

use crate::ids::{ServerId, TaskId};
use crate::resources::ResourceVec;
use crate::server::{HealthState, Server, TaskPlacement};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Default tracked overload threshold (the paper's `h_r = 0.9`); the
/// incremental overload index is maintained at this threshold unless
/// [`Cluster::set_overload_threshold`] retunes it.
pub const DEFAULT_OVERLOAD_THRESHOLD: f64 = 0.9;

/// Static description of a homogeneous cluster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of servers.
    pub servers: usize,
    /// GPUs per server.
    pub gpus_per_server: usize,
    /// Per-GPU compute capacity (normalized; 1.0 = one device).
    pub gpu_capacity: f64,
    /// CPU cores per server.
    pub cpu_cores: f64,
    /// Memory per server, GB.
    pub memory_gb: f64,
    /// NIC bandwidth per server, MB/s.
    pub nic_mbps: f64,
    /// Inter-server topology.
    pub topology: Topology,
}

impl ClusterConfig {
    /// The paper's real testbed: 20 × p3.8xlarge (4 × V100, 32 vCPU,
    /// 244 GB) — an 80-GPU cluster (§4.1).
    pub fn paper_testbed() -> Self {
        ClusterConfig {
            servers: 20,
            gpus_per_server: 4,
            gpu_capacity: 1.0,
            cpu_cores: 32.0,
            memory_gb: 244.0,
            nic_mbps: 1250.0,
            topology: Topology::default_flat(),
        }
    }

    /// The paper's simulated Philly-scale cluster: 550 servers, 2474
    /// GPUs (≈ 4.5 GPUs/server; we round to the dominant 4-GPU SKU and
    /// add the remainder via `servers` scaling at call sites).
    pub fn paper_philly(scale: f64) -> Self {
        let servers = ((550.0 * scale).round() as usize).max(1);
        ClusterConfig {
            servers,
            gpus_per_server: 4,
            gpu_capacity: 1.0,
            cpu_cores: 32.0,
            memory_gb: 244.0,
            nic_mbps: 1250.0,
            topology: Topology::default_flat(),
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.servers * self.gpus_per_server
    }
}

/// Error returned by placement operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceError {
    /// The task is already placed somewhere.
    AlreadyPlaced(ServerId),
    /// The named server does not exist.
    NoSuchServer,
    /// The named server is down or draining and accepts no new
    /// placements.
    ServerDown,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::AlreadyPlaced(s) => write!(f, "task already placed on {s}"),
            PlaceError::NoSuchServer => write!(f, "no such server"),
            PlaceError::ServerDown => write!(f, "server is down or draining"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// Full-fidelity snapshot of the mutable cluster state — everything
/// except the topology, which is static and rebuilt from the
/// [`ClusterConfig`] on restore. Serializable for crash-safe
/// scheduler-state checkpointing (`crates/service`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Every server: placements, health, cached loads and peaks.
    pub servers: Vec<Server>,
    /// The task → server placement index.
    pub index: BTreeMap<TaskId, ServerId>,
    /// Cumulative inter-server traffic ledger, MB.
    pub transferred_mb: f64,
    /// Cumulative migration traffic ledger, MB.
    pub migration_mb: f64,
    /// Number of migrations performed.
    pub migrations: u64,
    /// The tracked overload threshold.
    pub overload_h_r: f64,
    /// Servers overloaded at the tracked threshold, in id order.
    pub overloaded: BTreeSet<ServerId>,
}

/// The live cluster: servers plus global indices and accounting.
#[derive(Debug, Clone)]
pub struct Cluster {
    servers: Vec<Server>,
    topology: Topology,
    /// Where each placed task lives.
    index: BTreeMap<TaskId, ServerId>,
    /// Cumulative inter-server traffic, MB (the `g_3` bandwidth cost).
    transferred_mb: f64,
    /// Cumulative bytes moved specifically by task migrations, MB.
    migration_mb: f64,
    /// Number of migrations performed.
    migrations: u64,
    /// Threshold at which `overloaded` is maintained.
    overload_h_r: f64,
    /// Incrementally-updated index of servers overloaded at
    /// `overload_h_r`, kept in id order. Updated on every mutation
    /// from the touched server's cached peak utilization, so
    /// overload queries at the tracked threshold are O(|overloaded|)
    /// instead of a full utilization rescan.
    overloaded: BTreeSet<ServerId>,
}

impl Cluster {
    /// Build an idle cluster from a config.
    pub fn new(cfg: &ClusterConfig) -> Self {
        let servers = (0..cfg.servers)
            .map(|i| {
                Server::new(
                    ServerId(i as u32),
                    cfg.gpus_per_server,
                    cfg.gpu_capacity,
                    cfg.cpu_cores,
                    cfg.memory_gb,
                    cfg.nic_mbps,
                )
            })
            .collect();
        Cluster {
            servers,
            topology: cfg.topology,
            index: BTreeMap::new(),
            transferred_mb: 0.0,
            migration_mb: 0.0,
            migrations: 0,
            overload_h_r: DEFAULT_OVERLOAD_THRESHOLD,
            overloaded: BTreeSet::new(),
        }
    }

    /// Retune the threshold the incremental overload index tracks.
    /// Queries at other thresholds still work (they fall back to a
    /// scan of the cached per-server peaks).
    pub fn set_overload_threshold(&mut self, h_r: f64) {
        self.overload_h_r = h_r;
        self.overloaded = self
            .servers
            .iter()
            .filter(|s| s.is_overloaded(h_r))
            .map(|s| s.id)
            .collect();
    }

    /// The threshold the overload index currently tracks.
    pub fn tracked_overload_threshold(&self) -> f64 {
        self.overload_h_r
    }

    /// Re-index one server after its load changed.
    fn sync_overload(&mut self, id: ServerId) {
        let overloaded = self
            .servers
            .get(id.0 as usize)
            .is_some_and(|s| s.is_overloaded(self.overload_h_r));
        if overloaded {
            self.overloaded.insert(id);
        } else {
            self.overloaded.remove(&id);
        }
    }

    /// The maintained overloaded-server set (at the tracked
    /// threshold), in id order.
    pub fn overloaded_set(&self) -> &BTreeSet<ServerId> {
        &self.overloaded
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Immutable access to a server.
    ///
    /// Panics on a foreign id: `ServerId`s are minted by this
    /// `Cluster` (dense `0..server_count()`), so an out-of-range id is
    /// a cross-cluster mixup that must not be silently masked.
    pub fn server(&self, id: ServerId) -> &Server {
        // lint:allow(panic-slice-index, deep-panic-path) reason="ServerIds are minted dense by this Cluster; an out-of-range id is a cross-cluster bug that must fail loudly, not read a wrong server"
        &self.servers[id.0 as usize]
    }

    /// All servers, in id order.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// The inter-server topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Where a task currently runs, if placed.
    pub fn locate(&self, task: TaskId) -> Option<ServerId> {
        self.index.get(&task).copied()
    }

    /// Placement details for a placed task.
    pub fn placement(&self, task: TaskId) -> Option<(ServerId, TaskPlacement)> {
        let s = self.locate(task)?;
        self.server(s).placement(task).map(|p| (s, *p))
    }

    /// Number of placed tasks.
    pub fn placed_count(&self) -> usize {
        self.index.len()
    }

    /// Place `task` on `server`'s least-loaded GPU.
    pub fn place(
        &mut self,
        task: TaskId,
        server: ServerId,
        demand: ResourceVec,
        gpu_share: f64,
    ) -> Result<usize, PlaceError> {
        if let Some(existing) = self.locate(task) {
            return Err(PlaceError::AlreadyPlaced(existing));
        }
        let s = self
            .servers
            .get_mut(server.0 as usize)
            .ok_or(PlaceError::NoSuchServer)?;
        if !s.is_up() {
            return Err(PlaceError::ServerDown);
        }
        let gpu = s.place(task, demand, gpu_share);
        self.index.insert(task, server);
        self.sync_overload(server);
        Ok(gpu)
    }

    /// Place `task` on a specific GPU of `server` (used by schedulers
    /// that micro-manage GPU assignment, and by tests).
    pub fn place_on_gpu(
        &mut self,
        task: TaskId,
        server: ServerId,
        demand: ResourceVec,
        gpu_share: f64,
        gpu: usize,
    ) -> Result<(), PlaceError> {
        if let Some(existing) = self.locate(task) {
            return Err(PlaceError::AlreadyPlaced(existing));
        }
        let s = self
            .servers
            .get_mut(server.0 as usize)
            .ok_or(PlaceError::NoSuchServer)?;
        if !s.is_up() {
            return Err(PlaceError::ServerDown);
        }
        s.place_on_gpu(task, demand, gpu_share, gpu);
        self.index.insert(task, server);
        self.sync_overload(server);
        Ok(())
    }

    /// Remove `task` from wherever it is placed. Returns its former
    /// server and placement, or `None` if it was not placed.
    pub fn remove(&mut self, task: TaskId) -> Option<(ServerId, TaskPlacement)> {
        let server = self.index.remove(&task)?;
        // A `None` here means the index was stale; dropping the entry
        // above is the right cleanup either way.
        let p = self.servers.get_mut(server.0 as usize)?.remove(task)?;
        self.sync_overload(server);
        Some((server, p))
    }

    /// Migrate a placed task to `dst`, charging `state_mb` of transfer
    /// (model + optimizer state) to both the bandwidth-cost ledger and
    /// the migration ledger. Returns the destination GPU.
    pub fn migrate(
        &mut self,
        task: TaskId,
        dst: ServerId,
        state_mb: f64,
    ) -> Result<usize, PlaceError> {
        // Validate the destination before touching the source so a
        // refused migration (unknown or down server) leaves the task
        // exactly where it was, with nothing charged.
        match self.servers.get(dst.0 as usize) {
            None => return Err(PlaceError::NoSuchServer),
            Some(s) if !s.is_up() => return Err(PlaceError::ServerDown),
            Some(_) => {}
        }
        let (src, p) = match self.remove(task) {
            Some(x) => x,
            None => return Err(PlaceError::NoSuchServer),
        };
        if self.topology.is_remote(src, dst) {
            self.transferred_mb += state_mb;
            self.migration_mb += state_mb;
        }
        self.migrations += 1;
        match self.place(task, dst, p.demand, p.gpu_share) {
            Ok(gpu) => Ok(gpu),
            Err(e) => {
                // The destination was validated above and nothing ran
                // in between, so this arm is unreachable in practice —
                // but if it ever fires, unwind the ledgers and put the
                // task back on the source it just vacated instead of
                // aborting the simulation.
                self.migrations -= 1;
                if self.topology.is_remote(src, dst) {
                    self.transferred_mb -= state_mb;
                    self.migration_mb -= state_mb;
                }
                let _ = self.place(task, src, p.demand, p.gpu_share);
                Err(e)
            }
        }
    }

    /// Mark `server` as crashed (down until `until`, when known),
    /// evicting every placement on it. Returns the evicted tasks with
    /// their placement records; the overload index stays consistent
    /// (an empty down server is never overloaded). No transfer is
    /// charged — a crash loses state rather than moving it.
    pub fn fail_server(
        &mut self,
        server: ServerId,
        until: Option<simcore::SimTime>,
    ) -> Vec<(TaskId, TaskPlacement)> {
        let Some(s) = self.servers.get_mut(server.0 as usize) else {
            return Vec::new();
        };
        s.set_health(HealthState::Down { until });
        let evicted: Vec<(TaskId, TaskPlacement)> = s.tasks().map(|(t, p)| (*t, *p)).collect();
        for (t, _) in &evicted {
            if let Some(s) = self.servers.get_mut(server.0 as usize) {
                s.remove(*t);
            }
            self.index.remove(t);
        }
        self.sync_overload(server);
        evicted
    }

    /// Bring a server back into service. Its load is zero until the
    /// scheduler places something on it again.
    pub fn recover_server(&mut self, server: ServerId) {
        if let Some(s) = self.servers.get_mut(server.0 as usize) {
            s.set_health(HealthState::Up);
        }
        self.sync_overload(server);
    }

    /// Administratively drain a server: existing tasks keep running,
    /// but no new placements are admitted until recovery.
    pub fn drain_server(&mut self, server: ServerId) {
        if let Some(s) = self.servers.get_mut(server.0 as usize) {
            s.set_health(HealthState::Draining);
        }
    }

    /// A server's current health. An id outside the cluster reads as
    /// down (it certainly isn't schedulable).
    pub fn server_health(&self, server: ServerId) -> HealthState {
        self.servers
            .get(server.0 as usize)
            .map_or(HealthState::Down { until: None }, Server::health)
    }

    /// Number of servers currently `Up`.
    pub fn up_server_count(&self) -> usize {
        self.servers.iter().filter(|s| s.is_up()).count()
    }

    /// Replace a placed task's live demand (time-varying utilization).
    /// Returns `false` (and changes nothing) if the task is not placed
    /// anywhere — a stale update must never abort a simulation.
    pub fn update_demand(&mut self, task: TaskId, demand: ResourceVec, gpu_share: f64) -> bool {
        let Some(server) = self.locate(task) else {
            return false;
        };
        let Some(s) = self.servers.get_mut(server.0 as usize) else {
            return false;
        };
        if !s.update_demand(task, demand, gpu_share) {
            return false;
        }
        self.sync_overload(server);
        true
    }

    /// Record `mb` megabytes moving between two servers. Intra-server
    /// traffic is free (the paper's `B_{n_i,n_j}` is strictly between
    /// nodes).
    pub fn charge_transfer(&mut self, a: ServerId, b: ServerId, mb: f64) {
        if self.topology.is_remote(a, b) {
            self.transferred_mb += mb;
        }
    }

    /// Cumulative inter-server traffic in MB.
    pub fn transferred_mb(&self) -> f64 {
        self.transferred_mb
    }

    /// Cumulative migration traffic in MB.
    pub fn migration_mb(&self) -> f64 {
        self.migration_mb
    }

    /// Number of migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Export the full mutable state (see [`ClusterSnapshot`]).
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            servers: self.servers.clone(),
            index: self.index.clone(),
            transferred_mb: self.transferred_mb,
            migration_mb: self.migration_mb,
            migrations: self.migrations,
            overload_h_r: self.overload_h_r,
            overloaded: self.overloaded.clone(),
        }
    }

    /// Replace the mutable state with a snapshot taken from a cluster
    /// of the same shape. The topology is kept (it is static and comes
    /// from the config this cluster was built with).
    pub fn restore(&mut self, snap: ClusterSnapshot) {
        self.servers = snap.servers;
        self.index = snap.index;
        self.transferred_mb = snap.transferred_mb;
        self.migration_mb = snap.migration_mb;
        self.migrations = snap.migrations;
        self.overload_h_r = snap.overload_h_r;
        self.overloaded = snap.overloaded;
    }

    /// Servers currently overloaded at threshold `h_r`, in id order.
    /// At the tracked threshold this reads the incremental index;
    /// other thresholds scan the cached per-server peaks.
    pub fn overloaded_servers(&self, h_r: f64) -> Vec<ServerId> {
        if h_r == self.overload_h_r {
            return self.overloaded.iter().copied().collect();
        }
        self.servers
            .iter()
            .filter(|s| s.is_overloaded(h_r))
            .map(|s| s.id)
            .collect()
    }

    /// Number of servers overloaded at `h_r`, without allocating.
    pub fn overloaded_count(&self, h_r: f64) -> usize {
        if h_r == self.overload_h_r {
            return self.overloaded.len();
        }
        self.servers.iter().filter(|s| s.is_overloaded(h_r)).count()
    }

    /// Servers currently *not* overloaded at threshold `h_r`.
    pub fn underloaded_servers(&self, h_r: f64) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|s| !s.is_overloaded(h_r))
            .map(|s| s.id)
            .collect()
    }

    /// The paper's cluster overload degree
    /// `O_c^t = (1/|N|) Σ_s ||U_s^t||` (§3.5).
    pub fn cluster_overload_degree(&self) -> f64 {
        if self.servers.is_empty() {
            return 0.0;
        }
        self.servers
            .iter()
            .map(|s| s.overload_degree())
            .sum::<f64>()
            / self.servers.len() as f64
    }

    /// Mean utilization vector across servers (for reporting).
    pub fn mean_utilization(&self) -> ResourceVec {
        if self.servers.is_empty() {
            return ResourceVec::ZERO;
        }
        let mut acc = ResourceVec::ZERO;
        for s in &self.servers {
            acc += s.utilization();
        }
        acc / self.servers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::JobId;

    fn tid(j: u32, i: u16) -> TaskId {
        TaskId::new(JobId(j), i)
    }

    fn small() -> Cluster {
        Cluster::new(&ClusterConfig {
            servers: 3,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 8.0,
            memory_gb: 64.0,
            nic_mbps: 1000.0,
            topology: Topology::default_flat(),
        })
    }

    #[test]
    fn place_locate_remove_roundtrip() {
        let mut c = small();
        let d = ResourceVec::new(1.0, 2.0, 8.0, 100.0);
        let gpu = c.place(tid(1, 0), ServerId(1), d, 1.0).unwrap();
        assert_eq!(gpu, 0);
        assert_eq!(c.locate(tid(1, 0)), Some(ServerId(1)));
        assert_eq!(c.placed_count(), 1);
        let (srv, p) = c.remove(tid(1, 0)).unwrap();
        assert_eq!(srv, ServerId(1));
        assert_eq!(p.demand, d);
        assert_eq!(c.locate(tid(1, 0)), None);
        assert!(c.remove(tid(1, 0)).is_none());
    }

    #[test]
    fn double_place_is_an_error() {
        let mut c = small();
        let d = ResourceVec::splat(0.1);
        c.place(tid(1, 0), ServerId(0), d, 0.1).unwrap();
        assert_eq!(
            c.place(tid(1, 0), ServerId(2), d, 0.1),
            Err(PlaceError::AlreadyPlaced(ServerId(0)))
        );
    }

    #[test]
    fn migration_moves_and_charges() {
        let mut c = small();
        let d = ResourceVec::new(0.5, 1.0, 4.0, 50.0);
        c.place(tid(1, 0), ServerId(0), d, 0.5).unwrap();
        c.migrate(tid(1, 0), ServerId(2), 120.0).unwrap();
        assert_eq!(c.locate(tid(1, 0)), Some(ServerId(2)));
        assert_eq!(c.transferred_mb(), 120.0);
        assert_eq!(c.migration_mb(), 120.0);
        assert_eq!(c.migrations(), 1);
        assert_eq!(c.server(ServerId(0)).task_count(), 0);
        assert_eq!(c.server(ServerId(2)).task_count(), 1);
        // Same-server "migration" (GPU rebalance) is free.
        c.migrate(tid(1, 0), ServerId(2), 120.0).unwrap();
        assert_eq!(c.transferred_mb(), 120.0);
        assert_eq!(c.migrations(), 2);
    }

    #[test]
    fn transfer_charging_skips_intra_server() {
        let mut c = small();
        c.charge_transfer(ServerId(0), ServerId(0), 500.0);
        assert_eq!(c.transferred_mb(), 0.0);
        c.charge_transfer(ServerId(0), ServerId(1), 75.0);
        assert_eq!(c.transferred_mb(), 75.0);
    }

    #[test]
    fn overload_partition_is_exhaustive() {
        let mut c = small();
        // Overload server 1's memory.
        c.place(
            tid(1, 0),
            ServerId(1),
            ResourceVec::new(0.0, 0.0, 60.0, 0.0),
            0.0,
        )
        .unwrap();
        let over = c.overloaded_servers(0.9);
        let under = c.underloaded_servers(0.9);
        assert_eq!(over, vec![ServerId(1)]);
        assert_eq!(under, vec![ServerId(0), ServerId(2)]);
        assert_eq!(over.len() + under.len(), c.server_count());
    }

    #[test]
    fn cluster_overload_degree_averages() {
        let mut c = small();
        assert_eq!(c.cluster_overload_degree(), 0.0);
        // Saturate one server fully: utilization (1,1,1,1), norm 2.
        c.place(
            tid(1, 0),
            ServerId(0),
            ResourceVec::new(2.0, 8.0, 64.0, 1000.0),
            1.0,
        )
        .unwrap();
        let deg = c.cluster_overload_degree();
        assert!((deg - 2.0 / 3.0).abs() < 1e-9, "{deg}");
    }

    #[test]
    fn cluster_update_demand_routes_to_the_right_server() {
        let mut c = small();
        let d = ResourceVec::new(0.4, 1.0, 4.0, 40.0);
        c.place(tid(1, 0), ServerId(2), d, 0.4).unwrap();
        c.update_demand(tid(1, 0), d * 2.0, 0.8);
        let u = c.server(ServerId(2)).load();
        assert!((u.get(crate::Resource::NetBw) - 80.0).abs() < 1e-9);
        assert_eq!(c.server(ServerId(0)).load(), ResourceVec::ZERO);
    }

    #[test]
    fn cluster_update_demand_unplaced_is_a_noop() {
        let mut c = small();
        assert!(!c.update_demand(tid(9, 0), ResourceVec::ZERO, 0.0));
        assert_eq!(c.server(ServerId(0)).load(), ResourceVec::ZERO);
    }

    #[test]
    fn fail_server_evicts_everything_and_blocks_placement() {
        let mut c = small();
        let d = ResourceVec::new(0.5, 1.0, 4.0, 50.0);
        c.place(tid(1, 0), ServerId(1), d, 0.5).unwrap();
        c.place(tid(1, 1), ServerId(1), d, 0.5).unwrap();
        c.place(tid(2, 0), ServerId(0), d, 0.5).unwrap();
        let evicted = c.fail_server(ServerId(1), None);
        assert_eq!(
            evicted.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![tid(1, 0), tid(1, 1)]
        );
        assert_eq!(c.server(ServerId(1)).task_count(), 0);
        assert_eq!(c.server(ServerId(1)).load(), ResourceVec::ZERO);
        assert_eq!(c.locate(tid(1, 0)), None);
        assert_eq!(c.locate(tid(2, 0)), Some(ServerId(0)));
        assert_eq!(c.up_server_count(), 2);
        assert_eq!(
            c.place(tid(3, 0), ServerId(1), d, 0.5),
            Err(PlaceError::ServerDown)
        );
        // Recovery re-admits placements; load starts from zero.
        c.recover_server(ServerId(1));
        assert_eq!(c.server(ServerId(1)).load(), ResourceVec::ZERO);
        c.place(tid(3, 0), ServerId(1), d, 0.5).unwrap();
    }

    #[test]
    fn failing_an_overloaded_server_clears_it_from_the_index() {
        let mut c = small();
        c.place(
            tid(1, 0),
            ServerId(2),
            ResourceVec::new(0.0, 0.0, 60.0, 0.0),
            0.0,
        )
        .unwrap();
        assert_eq!(c.overloaded_servers(0.9), vec![ServerId(2)]);
        c.fail_server(ServerId(2), None);
        assert!(c.overloaded_servers(0.9).is_empty());
        assert_eq!(c.overloaded_count(0.9), 0);
    }

    #[test]
    fn draining_keeps_tasks_but_refuses_new_ones() {
        let mut c = small();
        let d = ResourceVec::splat(0.1);
        c.place(tid(1, 0), ServerId(0), d, 0.1).unwrap();
        c.drain_server(ServerId(0));
        assert_eq!(c.server(ServerId(0)).task_count(), 1);
        assert_eq!(c.locate(tid(1, 0)), Some(ServerId(0)));
        assert_eq!(
            c.place(tid(1, 1), ServerId(0), d, 0.1),
            Err(PlaceError::ServerDown)
        );
        assert_eq!(c.server_health(ServerId(0)), HealthState::Draining);
    }

    #[test]
    fn migrating_to_a_down_server_keeps_the_task_on_its_source() {
        let mut c = small();
        let d = ResourceVec::new(0.5, 1.0, 4.0, 50.0);
        c.place(tid(1, 0), ServerId(0), d, 0.5).unwrap();
        c.fail_server(ServerId(2), None);
        assert_eq!(
            c.migrate(tid(1, 0), ServerId(2), 120.0),
            Err(PlaceError::ServerDown)
        );
        // Nothing moved and nothing was charged.
        assert_eq!(c.locate(tid(1, 0)), Some(ServerId(0)));
        assert_eq!(c.transferred_mb(), 0.0);
        assert_eq!(c.migrations(), 0);
    }

    #[test]
    fn paper_configs_have_paper_scale() {
        let t = ClusterConfig::paper_testbed();
        assert_eq!(t.total_gpus(), 80);
        let p = ClusterConfig::paper_philly(1.0);
        assert_eq!(p.servers, 550);
        let ps = ClusterConfig::paper_philly(0.01);
        assert!(ps.servers >= 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ids::JobId;
    use crate::view::{ClusterOverlay, ClusterView};
    use proptest::prelude::*;

    fn small() -> Cluster {
        Cluster::new(&ClusterConfig {
            servers: 4,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 4.0,
            memory_gb: 16.0,
            nic_mbps: 500.0,
            topology: Topology::default_flat(),
        })
    }

    fn scan(c: &Cluster, h_r: f64) -> Vec<ServerId> {
        c.servers()
            .iter()
            .filter(|s| s.is_overloaded(h_r))
            .map(|s| s.id)
            .collect()
    }

    proptest! {
        /// The incrementally-maintained overload index always matches a
        /// from-scratch scan, under any interleaving of place, remove,
        /// migrate and demand updates.
        #[test]
        fn overload_index_matches_scan(
            ops in proptest::collection::vec((0u16..64, 0u8..4, 0.0f64..3.0, 0u32..4), 1..150),
        ) {
            let h_r = DEFAULT_OVERLOAD_THRESHOLD;
            let mut c = small();
            let mut live: Vec<TaskId> = Vec::new();
            for (i, (pick, op, amount, srv)) in ops.into_iter().enumerate() {
                let sid = ServerId(srv % c.server_count() as u32);
                match op {
                    0 if !live.is_empty() => {
                        let t = live.remove((pick as usize) % live.len());
                        c.remove(t);
                    }
                    1 if !live.is_empty() => {
                        let t = live[(pick as usize) % live.len()];
                        let d = ResourceVec::new(amount, amount * 2.0, amount * 3.0, amount * 5.0);
                        c.update_demand(t, d, (amount / 3.0).min(1.0));
                    }
                    2 if !live.is_empty() => {
                        let t = live[(pick as usize) % live.len()];
                        c.migrate(t, sid, 100.0).unwrap();
                    }
                    _ => {
                        let t = TaskId::new(JobId(0), i as u16);
                        let d = ResourceVec::new(amount, amount * 2.0, amount * 3.0, amount * 5.0);
                        c.place(t, sid, d, (amount / 3.0).min(1.0)).unwrap();
                        live.push(t);
                    }
                }
                prop_assert_eq!(c.overloaded_servers(h_r), scan(&c, h_r));
                prop_assert_eq!(c.overloaded_count(h_r), scan(&c, h_r).len());
            }
        }

        /// A copy-on-write overlay's overload set always matches a
        /// from-scratch scan of the overlay view, and the base cluster
        /// is never disturbed by speculative edits.
        #[test]
        fn overlay_overload_matches_scan(
            base_ops in proptest::collection::vec((0.0f64..2.5, 0u32..4), 0..20),
            spec_ops in proptest::collection::vec((0u16..64, 0u8..3, 0.0f64..2.5, 0u32..4), 1..60),
        ) {
            let h_r = DEFAULT_OVERLOAD_THRESHOLD;
            let mut c = small();
            for (i, (amount, srv)) in base_ops.into_iter().enumerate() {
                let sid = ServerId(srv % c.server_count() as u32);
                let d = ResourceVec::new(amount, amount * 2.0, amount * 3.0, amount * 5.0);
                c.place(TaskId::new(JobId(0), i as u16), sid, d, (amount / 2.5).min(1.0)).unwrap();
            }
            let base_overloaded = c.overloaded_servers(h_r);

            let mut overlay = ClusterOverlay::new(&c, h_r);
            let mut live: Vec<TaskId> = c.servers()
                .iter()
                .flat_map(|s| s.tasks().map(|(t, _)| *t))
                .collect();
            for (i, (pick, op, amount, srv)) in spec_ops.into_iter().enumerate() {
                let sid = ServerId(srv % overlay.server_count() as u32);
                match op {
                    0 if !live.is_empty() => {
                        let t = live.remove((pick as usize) % live.len());
                        overlay.remove(t);
                    }
                    1 if !live.is_empty() => {
                        let t = live[(pick as usize) % live.len()];
                        overlay.migrate(t, sid).unwrap();
                    }
                    _ => {
                        let t = TaskId::new(JobId(1), i as u16);
                        let d = ResourceVec::new(amount, amount * 2.0, amount * 3.0, amount * 5.0);
                        overlay.place(t, sid, d, (amount / 2.5).min(1.0)).unwrap();
                        live.push(t);
                    }
                }
                let expect: Vec<ServerId> = (0..overlay.server_count())
                    .map(|i| ServerId(i as u32))
                    .filter(|&id| overlay.server(id).is_overloaded(h_r))
                    .collect();
                prop_assert_eq!(overlay.overloaded_servers(h_r), expect);
            }
            // Speculation never leaks into the base cluster.
            prop_assert_eq!(c.overloaded_servers(h_r), base_overloaded);
        }

        /// Under any interleaving of place / remove / migrate /
        /// fail / recover, resource accounting never leaks: every
        /// server's load is exactly the sum of its surviving tasks'
        /// demands, evicted tasks are never still locatable, the
        /// overload index matches a scan, and a recovered server
        /// reports zero load until something is placed on it again.
        #[test]
        fn fault_interleavings_never_leak(
            ops in proptest::collection::vec((0u16..64, 0u8..6, 0.0f64..3.0, 0u32..4), 1..150),
        ) {
            let h_r = DEFAULT_OVERLOAD_THRESHOLD;
            let mut c = small();
            let mut live: Vec<(TaskId, ResourceVec, f64)> = Vec::new();
            for (i, (pick, op, amount, srv)) in ops.into_iter().enumerate() {
                let sid = ServerId(srv % c.server_count() as u32);
                match op {
                    0 if !live.is_empty() => {
                        let (t, _, _) = live.remove((pick as usize) % live.len());
                        c.remove(t);
                    }
                    1 if !live.is_empty() => {
                        let (t, _, _) = live[(pick as usize) % live.len()];
                        match c.migrate(t, sid, 100.0) {
                            Ok(_) => prop_assert_eq!(c.locate(t), Some(sid)),
                            // A refused migration must leave the task
                            // on its source.
                            Err(PlaceError::ServerDown) => {
                                prop_assert!(!c.server(sid).is_up());
                                prop_assert!(c.locate(t).is_some());
                            }
                            Err(e) => prop_assert!(false, "unexpected migrate error {e}"),
                        }
                    }
                    2 => {
                        let evicted = c.fail_server(sid, None);
                        for (t, _) in &evicted {
                            prop_assert!(c.locate(*t).is_none());
                            live.retain(|(l, _, _)| l != t);
                        }
                        prop_assert_eq!(c.server(sid).task_count(), 0);
                        prop_assert!(c.server(sid).load().norm() < 1e-9);
                    }
                    3 => {
                        let was_down = !c.server(sid).is_up();
                        c.recover_server(sid);
                        prop_assert!(c.server(sid).is_up());
                        if was_down {
                            prop_assert!(c.server(sid).load().norm() < 1e-9);
                            prop_assert_eq!(c.server(sid).task_count(), 0);
                        }
                    }
                    _ => {
                        let t = TaskId::new(JobId(0), i as u16);
                        let d = ResourceVec::new(amount, amount * 2.0, amount * 3.0, amount * 5.0);
                        let g = (amount / 3.0).min(1.0);
                        match c.place(t, sid, d, g) {
                            Ok(_) => live.push((t, d, g)),
                            Err(PlaceError::ServerDown) => prop_assert!(!c.server(sid).is_up()),
                            Err(e) => prop_assert!(false, "unexpected place error {e}"),
                        }
                    }
                }
                // Global conservation: per-server load equals the sum
                // of the demands of the tasks placed there.
                for s in c.servers() {
                    let mut expect = ResourceVec::ZERO;
                    for (t, _) in s.tasks() {
                        let d = live.iter().find(|(l, _, _)| l == t).map(|(_, d, _)| *d);
                        prop_assert!(d.is_some(), "cluster holds a task the model evicted");
                        expect += d.unwrap();
                    }
                    for r in 0..crate::resources::NUM_RESOURCES {
                        prop_assert!((s.load().0[r] - expect.0[r]).abs() < 1e-6);
                    }
                }
                prop_assert_eq!(c.placed_count(), live.len());
                prop_assert_eq!(c.overloaded_servers(h_r), scan(&c, h_r));
            }
        }
    }
}
