//! Ready-made experiment configurations for every figure.
//!
//! Each figure's workload/cluster setup lives here so the bench
//! binaries, the examples and the integration tests all run the exact
//! same experiments. Scaling knobs (`time_factor`, `scale`) shrink
//! runs to laptop budgets while preserving offered load; the values
//! used for the committed results are recorded in EXPERIMENTS.md.

use crate::engine::{run, FaultConfig, SimConfig};
use crate::progress::ProgressModel;
use cluster::ClusterConfig;
use metrics::RunMetrics;
use mlfs::{MlfRlConfig, Params, Scheduler};
use simcore::SimDuration;
use workload::{JobSpec, TraceConfig, TraceGenerator};

/// A fully-specified experiment: cluster + workload.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Identifier (e.g. "fig4-x1").
    pub name: String,
    /// Engine configuration.
    pub sim: SimConfig,
    /// Trace configuration.
    pub trace: TraceConfig,
}

impl Experiment {
    /// Generate this experiment's job specs.
    pub fn jobs(&self) -> Vec<JobSpec> {
        TraceGenerator::new(self.trace.clone()).generate()
    }

    /// Number of scheduler rounds the arrival span covers (used to
    /// size MLF-RL's imitation phase at 50% of the trace, as in §4.1).
    pub fn expected_rounds(&self) -> usize {
        (self.trace.effective_span().as_millis() / self.sim.tick.as_millis().max(1)) as usize
    }

    /// Run the experiment under `scheduler`.
    pub fn run(&self, scheduler: &mut dyn Scheduler) -> RunMetrics {
        run(self.sim.clone(), self.jobs(), scheduler)
    }

    /// Build one of the figure schedulers by legend name, with the
    /// MLFS variants' imitation budget sized to half the trace.
    pub fn scheduler(&self, name: &str, seed: u64) -> Box<dyn Scheduler> {
        self.scheduler_with_params(name, seed, Params::default())
    }

    /// Build a figure scheduler the way the paper evaluates it: the
    /// RL-based MLFS variants are *pre-trained* on a warm-up trace
    /// drawn from the same distribution ("after the RL processed the
    /// first 50% data of the real trace, the model is trained",
    /// §4.1), then evaluated greedily (no exploration noise) with
    /// online fine-tuning continuing. Other schedulers pass through.
    pub fn trained_scheduler(&self, name: &str, seed: u64) -> Box<dyn Scheduler> {
        self.trained_scheduler_with_params(name, seed, Params::default())
    }

    /// [`Experiment::trained_scheduler`] with explicit params.
    pub fn trained_scheduler_with_params(
        &self,
        name: &str,
        seed: u64,
        params: Params,
    ) -> Box<dyn Scheduler> {
        if name == "RL" {
            // The Mirhoseini-style baseline is also a *trained* system:
            // give it one warm-up run of exploration, then evaluate
            // greedily (it never gets an imitation bootstrap — §3.4).
            let mut warm_exp = self.clone();
            warm_exp.trace.seed = warm_exp.trace.seed.wrapping_add(0x5747_11AA);
            let mut warm = baselines::RlPlacer::new(seed);
            warm_exp.run(&mut warm);
            let policy = warm.export_policy();
            let mut eval = baselines::RlPlacer::new(seed);
            eval.import_policy(policy);
            eval.explore = false;
            return Box::new(eval);
        }
        if name != "MLF-RL" && name != "MLFS" {
            return self.scheduler_with_params(name, seed, params);
        }
        // One warm-up epoch on a shifted-seed trace of the same shape,
        // imitating MLF-H throughout (the §4.1 offline training).
        // Exploration-heavy REINFORCE epochs were measured to converge
        // to the same anchor-following policy while stranding jobs in
        // the warm-up cluster (grinding the run to its horizon), so
        // the cheap all-imitation warm-up is used; policy-gradient
        // fine-tuning still runs online during evaluation.
        let rl_cfg = MlfRlConfig {
            imitation_rounds: usize::MAX / 2,
            explore: false,
            seed,
            ..Default::default()
        };
        let mut warm_exp = self.clone();
        warm_exp.trace.seed = warm_exp.trace.seed.wrapping_add(0x5747_11AA);
        let mut warm = mlfs::Mlfs::rl(params, rl_cfg.clone());
        warm_exp.run(&mut warm);
        // `Mlfs::rl` always carries an RL component; if it ever does
        // not, evaluate untrained rather than abort the experiment.
        let policy = warm.rl_mut().map(|rl| rl.export_policy());

        // Evaluation scheduler: trained policy, greedy, no imitation.
        let mut eval = match name {
            "MLF-RL" => mlfs::Mlfs::rl(params, rl_cfg),
            _ => mlfs::Mlfs::full(params, rl_cfg),
        };
        if let (Some(rl), Some(policy)) = (eval.rl_mut(), policy) {
            rl.import_policy(policy);
            rl.set_explore(false);
        }
        Box::new(eval)
    }

    /// Like [`Experiment::scheduler`] but with explicit MLFS params
    /// (ablation switches for Figs. 6–9).
    pub fn scheduler_with_params(
        &self,
        name: &str,
        seed: u64,
        params: Params,
    ) -> Box<dyn Scheduler> {
        let rl_cfg = MlfRlConfig {
            imitation_rounds: self.expected_rounds() / 2,
            seed,
            ..Default::default()
        };
        match name {
            "MLF-H" => Box::new(mlfs::Mlfs::heuristic(params)),
            "MLF-RL" => Box::new(mlfs::Mlfs::rl(params, rl_cfg)),
            "MLFS" => Box::new(mlfs::Mlfs::full(params, rl_cfg)),
            // Config-time validation of a caller-supplied name, before
            // any simulation starts — failing fast here is correct.
            other => baselines::by_name(other, seed)
                .unwrap_or_else(|| panic!("unknown scheduler {other}")), // lint:allow(panic-macro) reason="experiment-setup validation of a user-supplied scheduler name; no simulation is running yet"
        }
    }
}

/// Simulation horizon: generously past the arrival span so the queue
/// can drain, but bounded so a pathological scheduler cannot grind a
/// simulated year of one-minute rounds (its stranded jobs are simply
/// recorded as unfinished).
fn horizon(trace: &TraceConfig) -> SimDuration {
    trace.effective_span().mul_f64(8.0) + SimDuration::from_hours(12)
}

/// Time compression shrinks compute times by `tf`; transfer *times*
/// must shrink identically or communication is `tf`× over-weighted
/// relative to compute. Scaling every link bandwidth by `tf` keeps
/// transfer times consistent while leaving byte quantities (the
/// bandwidth-cost metric) at paper scale.
fn compress_network(cluster: &mut ClusterConfig, tf: f64) {
    cluster.nic_mbps *= tf;
    cluster.topology = match cluster.topology {
        cluster::Topology::Flat {
            inter_mbps,
            intra_mbps,
        } => cluster::Topology::Flat {
            inter_mbps: inter_mbps * tf,
            intra_mbps: intra_mbps * tf,
        },
        cluster::Topology::Tree {
            rack_size,
            rack_mbps,
            intra_mbps,
            oversubscription,
        } => cluster::Topology::Tree {
            rack_size,
            rack_mbps: rack_mbps * tf,
            intra_mbps: intra_mbps * tf,
            oversubscription,
        },
    };
}

/// Fig. 4 (real-experiment scale): the 20-server / 80-GPU testbed with
/// `620·x` jobs over one (compressed) week. `x ∈ {¼, ½, 1, 2, 3}` in
/// the paper.
pub fn fig4(x: f64, time_factor: f64, seed: u64) -> Experiment {
    let trace = TraceConfig::paper_real(x, time_factor, seed);
    let mut cluster = ClusterConfig::paper_testbed();
    compress_network(&mut cluster, time_factor);
    Experiment {
        name: format!("fig4-x{x}"),
        sim: SimConfig {
            cluster,
            tick: SimDuration::from_secs(60),
            progress: ProgressModel::Pipelined,
            h_r: 0.9,
            max_time: horizon(&trace),
            straggler: None,
            fault: None,
            utilization_noise: 0.05,
            seed,
            record_timeline: false,
            trace: obs::TraceConfig::default(),
            engine: crate::engine::EngineMode::default(),
        },
        trace,
    }
}

/// Fig. 5 (large-scale simulation): the Philly-scale cluster (550
/// servers × `scale`) with `117325·x·scale` jobs over 18 (compressed)
/// weeks. `x ∈ {½, 1, 2, 3, 4}` in the paper.
pub fn fig5(x: f64, scale: f64, time_factor: f64, seed: u64) -> Experiment {
    let trace = TraceConfig::paper_sim(x, scale, time_factor, seed);
    let mut cluster = ClusterConfig::paper_philly(scale);
    compress_network(&mut cluster, time_factor);
    // The Philly-scale workload oversubscribes the cluster by design
    // (as the real Philly did): a weak scheduler strands jobs, so the
    // Fig. 4 drain-out horizon (8x span) would grind tens of
    // thousands of one-minute rounds per cell. A 1.5x horizon keeps
    // every cell bounded; jobs still queued then are recorded as
    // unfinished - which is the comparison.
    let fig5_horizon = trace.effective_span().mul_f64(1.5) + SimDuration::from_hours(12);
    Experiment {
        name: format!("fig5-x{x}-s{scale}"),
        sim: SimConfig {
            cluster,
            tick: SimDuration::from_secs(60),
            progress: ProgressModel::Pipelined,
            h_r: 0.9,
            max_time: fig5_horizon,
            straggler: None,
            fault: None,
            utilization_noise: 0.05,
            seed,
            record_timeline: false,
            trace: obs::TraceConfig::default(),
            engine: crate::engine::EngineMode::default(),
        },
        trace,
    }
}

/// Figs. 6–9 run at Fig. 4's scale with MLF-H / MLFS under modified
/// [`Params`]; this helper just forwards with a distinct name.
pub fn ablation(name: &str, x: f64, time_factor: f64, seed: u64) -> Experiment {
    let mut e = fig4(x, time_factor, seed);
    e.name = format!("{name}-x{x}");
    e
}

/// Phase 1 of the [`drift`] workload: Fig. 4's testbed, but the job
/// mix narrowed to small jobs (1–2 GPUs, lightweight algorithms).
/// This is the distribution the offline dataset is recorded on — its
/// narrowness is the point: a policy warm-started here has never seen
/// wide distributed jobs, so phase 2's fan-out is genuinely
/// out-of-distribution for it.
pub fn drift_phase1(x: f64, time_factor: f64, seed: u64) -> Experiment {
    let mut e = fig4(x, time_factor, seed);
    e.name = format!("drift-p1-x{x}");
    e.trace.gpu_choices = vec![(1, 0.55), (2, 0.45)];
    e.trace.algorithm_weights = [0.35, 0.30, 0.20, 0.10, 0.05];
    e.sim.max_time = horizon(&e.trace);
    e
}

/// A drifting workload (training-loop experiment, docs/TRAINING.md):
/// phase 1 is [`drift_phase1`]'s narrow small-job mix, then the
/// distribution *shifts* — the cluster fills with short, wide,
/// communication-heavy distributed jobs (8–32 GPU fan-out, the
/// algorithm mix inverted toward the heavyweight end, tighter
/// deadlines). Phase 2's volume is cut to a quarter so the shift
/// stays *unsaturated*: with free capacity throughout, mean JCT is
/// governed by placement quality (co-location vs cross-server links,
/// GPU contention) rather than by queue ordering. Returns the
/// experiment (cluster/engine config with a horizon covering both
/// phases) and the merged job list; `phase_boundary` is the simulated
/// time where phase 2's arrivals begin. A policy warm-started on a
/// phase-1 trace sees its training distribution vanish mid-run — the
/// scenario continuous retraining exists for.
pub fn drift(x: f64, time_factor: f64, seed: u64) -> (Experiment, Vec<JobSpec>, SimDuration) {
    let mut e = drift_phase1(x, time_factor, seed);
    e.name = format!("drift-x{x}");
    let phase1 = e.jobs();
    let boundary = e.trace.effective_span();

    // Phase 2: a quarter of the arrival volume, wide fan-out.
    let mut t2 = e.trace.clone();
    t2.seed = seed.wrapping_add(0xD21F_7001);
    t2.jobs = (t2.jobs / 4).max(1);
    // Invert the mix toward the heavyweight (comm-hungry) end of the
    // algorithm set…
    t2.algorithm_weights = [0.05, 0.10, 0.15, 0.30, 0.40];
    // …with wide distributed jobs (many tasks → many DAG edges whose
    // placement matters)…
    t2.gpu_choices = vec![(8, 0.45), (16, 0.35), (32, 0.20)];
    // …but short and deadline-tight, so overall load stays below
    // saturation.
    t2.duration_median_mins *= 0.5;
    t2.deadline_slack_hours = (0.25, 4.0);
    let phase2_raw = TraceGenerator::new(t2).generate();

    // Merge: phase-2 jobs re-identified after phase 1 and shifted past
    // the boundary (ids must stay unique; tasks carry their job id).
    let base = phase1.len() as u32;
    let mut jobs = phase1;
    for (i, mut job) in phase2_raw.into_iter().enumerate() {
        let jid = cluster::JobId(base + i as u32);
        job.id = jid;
        for (k, task) in job.tasks.iter_mut().enumerate() {
            task.id = cluster::TaskId::new(jid, k as u16);
        }
        job.arrival += boundary;
        job.deadline += boundary;
        jobs.push(job);
    }

    // Horizon: both phases plus drain-out.
    e.sim.max_time = boundary.mul_f64(2.0) + horizon(&e.trace);
    (e, jobs, boundary)
}

/// Schedulers compared in the fault sweep (robustness study): the
/// full MLFS pipeline against the strongest preemptive baseline and
/// the no-frills queue.
pub const FAULT_SWEEP_SCHEDULERS: [&str; 3] = ["MLFS", "Tiresias", "FIFO"];

/// Fault sweep (no paper counterpart; robustness extension): Fig. 4's
/// testbed workload with seeded random server crashes at the given
/// per-server MTBF (simulated hours). Jobs checkpoint every
/// `checkpoint_iters` iterations; crashed servers return after an
/// exponential ~30-minute MTTR. `mtbf_hours = 0` gives the no-fault
/// control cell.
pub fn fault_sweep(
    x: f64,
    time_factor: f64,
    mtbf_hours: f64,
    checkpoint_iters: u64,
    seed: u64,
) -> Experiment {
    let mut e = fig4(x, time_factor, seed);
    e.name = format!("fault-mtbf{mtbf_hours}-x{x}");
    e.sim.fault = Some(FaultConfig {
        mtbf_hours,
        mttr_hours: 0.5,
        schedule: Vec::new(),
        checkpoint_iters,
    });
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_matches_paper_setup() {
        let e = fig4(0.25, 8.0, 1);
        assert_eq!(e.sim.cluster.total_gpus(), 80);
        assert_eq!(e.trace.jobs, 155);
        assert_eq!(e.sim.tick, SimDuration::from_secs(60));
        // One week compressed 8× ≈ 21 h ≈ 1260 rounds.
        let rounds = e.expected_rounds();
        assert!((1200..=1300).contains(&rounds), "{rounds}");
    }

    #[test]
    fn fig5_scales_cluster_and_jobs_together() {
        let e = fig5(0.5, 0.02, 40.0, 1);
        assert_eq!(e.sim.cluster.servers, 11);
        assert_eq!(e.trace.jobs, (117_325.0f64 * 0.5 * 0.02).round() as usize);
    }

    #[test]
    fn scheduler_factory_covers_all_legends() {
        let e = fig4(0.25, 8.0, 1);
        for name in baselines::FIGURE_SCHEDULERS {
            let s = e.scheduler(name, 3);
            assert_eq!(s.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn unknown_scheduler_panics() {
        fig4(0.25, 8.0, 1).scheduler("what", 0);
    }

    #[test]
    fn drift_workload_shifts_distribution_at_the_boundary() {
        let (e, jobs, boundary) = drift(0.25, 8.0, 7);
        // Phase 1 plus a quarter-volume phase 2, unique ids.
        assert_eq!(jobs.len(), 155 + 38);
        let mut seen = std::collections::BTreeSet::new();
        for j in &jobs {
            assert!(seen.insert(j.id), "duplicate job id {:?}", j.id);
            for (k, t) in j.tasks.iter().enumerate() {
                assert_eq!(t.id, cluster::TaskId::new(j.id, k as u16));
            }
        }
        let (p1, p2): (Vec<_>, Vec<_>) = jobs
            .iter()
            .partition(|j| j.arrival < simcore::SimTime::ZERO + boundary);
        assert_eq!(p1.len(), 155);
        assert_eq!(p2.len(), 38);
        // The shifted phase really is wider: more tasks per job
        // (distributed-scale fan-out the phase-1 student never saw).
        let mean_tasks =
            |v: &[&JobSpec]| v.iter().map(|j| j.tasks.len()).sum::<usize>() as f64 / v.len() as f64;
        assert!(
            mean_tasks(&p2) > mean_tasks(&p1) * 1.3,
            "phase2 {} vs phase1 {}",
            mean_tasks(&p2),
            mean_tasks(&p1)
        );
        assert!(e.sim.max_time > boundary.mul_f64(2.0));
        // Deterministic: same seed, same workload.
        let (_, jobs2, _) = drift(0.25, 8.0, 7);
        assert_eq!(jobs.len(), jobs2.len());
        assert!(jobs
            .iter()
            .zip(&jobs2)
            .all(|(a, b)| a.id == b.id && a.arrival == b.arrival));
    }

    #[test]
    fn fault_sweep_attaches_fault_config() {
        let e = fault_sweep(0.25, 8.0, 6.0, 50, 1);
        let fc = e.sim.fault.as_ref().expect("fault config attached");
        assert_eq!(fc.mtbf_hours, 6.0);
        assert_eq!(fc.checkpoint_iters, 50);
        assert!(e.name.contains("fault"));
        // The sweep's scheduler set resolves through the factory.
        for name in FAULT_SWEEP_SCHEDULERS {
            assert_eq!(e.scheduler(name, 3).name(), name);
        }
    }
}
