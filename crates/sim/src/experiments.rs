//! Ready-made experiment configurations for every figure.
//!
//! Each figure's workload/cluster setup lives here so the bench
//! binaries, the examples and the integration tests all run the exact
//! same experiments. Scaling knobs (`time_factor`, `scale`) shrink
//! runs to laptop budgets while preserving offered load; the values
//! used for the committed results are recorded in EXPERIMENTS.md.

use crate::engine::{run, FaultConfig, SimConfig};
use crate::progress::ProgressModel;
use cluster::ClusterConfig;
use metrics::RunMetrics;
use mlfs::{MlfRlConfig, Params, Scheduler};
use simcore::SimDuration;
use workload::{JobSpec, TraceConfig, TraceGenerator};

/// A fully-specified experiment: cluster + workload.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Identifier (e.g. "fig4-x1").
    pub name: String,
    /// Engine configuration.
    pub sim: SimConfig,
    /// Trace configuration.
    pub trace: TraceConfig,
}

impl Experiment {
    /// Generate this experiment's job specs.
    pub fn jobs(&self) -> Vec<JobSpec> {
        TraceGenerator::new(self.trace.clone()).generate()
    }

    /// Number of scheduler rounds the arrival span covers (used to
    /// size MLF-RL's imitation phase at 50% of the trace, as in §4.1).
    pub fn expected_rounds(&self) -> usize {
        (self.trace.effective_span().as_millis() / self.sim.tick.as_millis().max(1)) as usize
    }

    /// Run the experiment under `scheduler`.
    pub fn run(&self, scheduler: &mut dyn Scheduler) -> RunMetrics {
        run(self.sim.clone(), self.jobs(), scheduler)
    }

    /// Build one of the figure schedulers by legend name, with the
    /// MLFS variants' imitation budget sized to half the trace.
    pub fn scheduler(&self, name: &str, seed: u64) -> Box<dyn Scheduler> {
        self.scheduler_with_params(name, seed, Params::default())
    }

    /// Build a figure scheduler the way the paper evaluates it: the
    /// RL-based MLFS variants are *pre-trained* on a warm-up trace
    /// drawn from the same distribution ("after the RL processed the
    /// first 50% data of the real trace, the model is trained",
    /// §4.1), then evaluated greedily (no exploration noise) with
    /// online fine-tuning continuing. Other schedulers pass through.
    pub fn trained_scheduler(&self, name: &str, seed: u64) -> Box<dyn Scheduler> {
        self.trained_scheduler_with_params(name, seed, Params::default())
    }

    /// [`Experiment::trained_scheduler`] with explicit params.
    pub fn trained_scheduler_with_params(
        &self,
        name: &str,
        seed: u64,
        params: Params,
    ) -> Box<dyn Scheduler> {
        if name == "RL" {
            // The Mirhoseini-style baseline is also a *trained* system:
            // give it one warm-up run of exploration, then evaluate
            // greedily (it never gets an imitation bootstrap — §3.4).
            let mut warm_exp = self.clone();
            warm_exp.trace.seed = warm_exp.trace.seed.wrapping_add(0x5747_11AA);
            let mut warm = baselines::RlPlacer::new(seed);
            warm_exp.run(&mut warm);
            let policy = warm.export_policy();
            let mut eval = baselines::RlPlacer::new(seed);
            eval.import_policy(policy);
            eval.explore = false;
            return Box::new(eval);
        }
        if name != "MLF-RL" && name != "MLFS" {
            return self.scheduler_with_params(name, seed, params);
        }
        // One warm-up epoch on a shifted-seed trace of the same shape,
        // imitating MLF-H throughout (the §4.1 offline training).
        // Exploration-heavy REINFORCE epochs were measured to converge
        // to the same anchor-following policy while stranding jobs in
        // the warm-up cluster (grinding the run to its horizon), so
        // the cheap all-imitation warm-up is used; policy-gradient
        // fine-tuning still runs online during evaluation.
        let rl_cfg = MlfRlConfig {
            imitation_rounds: usize::MAX / 2,
            explore: false,
            seed,
            ..Default::default()
        };
        let mut warm_exp = self.clone();
        warm_exp.trace.seed = warm_exp.trace.seed.wrapping_add(0x5747_11AA);
        let mut warm = mlfs::Mlfs::rl(params, rl_cfg.clone());
        warm_exp.run(&mut warm);
        // `Mlfs::rl` always carries an RL component; if it ever does
        // not, evaluate untrained rather than abort the experiment.
        let policy = warm.rl_mut().map(|rl| rl.export_policy());

        // Evaluation scheduler: trained policy, greedy, no imitation.
        let mut eval = match name {
            "MLF-RL" => mlfs::Mlfs::rl(params, rl_cfg),
            _ => mlfs::Mlfs::full(params, rl_cfg),
        };
        if let (Some(rl), Some(policy)) = (eval.rl_mut(), policy) {
            rl.import_policy(policy);
            rl.set_explore(false);
        }
        Box::new(eval)
    }

    /// Like [`Experiment::scheduler`] but with explicit MLFS params
    /// (ablation switches for Figs. 6–9).
    pub fn scheduler_with_params(
        &self,
        name: &str,
        seed: u64,
        params: Params,
    ) -> Box<dyn Scheduler> {
        let rl_cfg = MlfRlConfig {
            imitation_rounds: self.expected_rounds() / 2,
            seed,
            ..Default::default()
        };
        match name {
            "MLF-H" => Box::new(mlfs::Mlfs::heuristic(params)),
            "MLF-RL" => Box::new(mlfs::Mlfs::rl(params, rl_cfg)),
            "MLFS" => Box::new(mlfs::Mlfs::full(params, rl_cfg)),
            // Config-time validation of a caller-supplied name, before
            // any simulation starts — failing fast here is correct.
            other => baselines::by_name(other, seed)
                .unwrap_or_else(|| panic!("unknown scheduler {other}")), // lint:allow(panic-macro) reason="experiment-setup validation of a user-supplied scheduler name; no simulation is running yet"
        }
    }
}

/// Simulation horizon: generously past the arrival span so the queue
/// can drain, but bounded so a pathological scheduler cannot grind a
/// simulated year of one-minute rounds (its stranded jobs are simply
/// recorded as unfinished).
fn horizon(trace: &TraceConfig) -> SimDuration {
    trace.effective_span().mul_f64(8.0) + SimDuration::from_hours(12)
}

/// Time compression shrinks compute times by `tf`; transfer *times*
/// must shrink identically or communication is `tf`× over-weighted
/// relative to compute. Scaling every link bandwidth by `tf` keeps
/// transfer times consistent while leaving byte quantities (the
/// bandwidth-cost metric) at paper scale.
fn compress_network(cluster: &mut ClusterConfig, tf: f64) {
    cluster.nic_mbps *= tf;
    cluster.topology = match cluster.topology {
        cluster::Topology::Flat {
            inter_mbps,
            intra_mbps,
        } => cluster::Topology::Flat {
            inter_mbps: inter_mbps * tf,
            intra_mbps: intra_mbps * tf,
        },
        cluster::Topology::Tree {
            rack_size,
            rack_mbps,
            intra_mbps,
            oversubscription,
        } => cluster::Topology::Tree {
            rack_size,
            rack_mbps: rack_mbps * tf,
            intra_mbps: intra_mbps * tf,
            oversubscription,
        },
    };
}

/// Fig. 4 (real-experiment scale): the 20-server / 80-GPU testbed with
/// `620·x` jobs over one (compressed) week. `x ∈ {¼, ½, 1, 2, 3}` in
/// the paper.
pub fn fig4(x: f64, time_factor: f64, seed: u64) -> Experiment {
    let trace = TraceConfig::paper_real(x, time_factor, seed);
    let mut cluster = ClusterConfig::paper_testbed();
    compress_network(&mut cluster, time_factor);
    Experiment {
        name: format!("fig4-x{x}"),
        sim: SimConfig {
            cluster,
            tick: SimDuration::from_secs(60),
            progress: ProgressModel::Pipelined,
            h_r: 0.9,
            max_time: horizon(&trace),
            straggler: None,
            fault: None,
            utilization_noise: 0.05,
            seed,
            record_timeline: false,
            trace: obs::TraceConfig::default(),
            engine: crate::engine::EngineMode::default(),
        },
        trace,
    }
}

/// Fig. 5 (large-scale simulation): the Philly-scale cluster (550
/// servers × `scale`) with `117325·x·scale` jobs over 18 (compressed)
/// weeks. `x ∈ {½, 1, 2, 3, 4}` in the paper.
pub fn fig5(x: f64, scale: f64, time_factor: f64, seed: u64) -> Experiment {
    let trace = TraceConfig::paper_sim(x, scale, time_factor, seed);
    let mut cluster = ClusterConfig::paper_philly(scale);
    compress_network(&mut cluster, time_factor);
    // The Philly-scale workload oversubscribes the cluster by design
    // (as the real Philly did): a weak scheduler strands jobs, so the
    // Fig. 4 drain-out horizon (8x span) would grind tens of
    // thousands of one-minute rounds per cell. A 1.5x horizon keeps
    // every cell bounded; jobs still queued then are recorded as
    // unfinished - which is the comparison.
    let fig5_horizon = trace.effective_span().mul_f64(1.5) + SimDuration::from_hours(12);
    Experiment {
        name: format!("fig5-x{x}-s{scale}"),
        sim: SimConfig {
            cluster,
            tick: SimDuration::from_secs(60),
            progress: ProgressModel::Pipelined,
            h_r: 0.9,
            max_time: fig5_horizon,
            straggler: None,
            fault: None,
            utilization_noise: 0.05,
            seed,
            record_timeline: false,
            trace: obs::TraceConfig::default(),
            engine: crate::engine::EngineMode::default(),
        },
        trace,
    }
}

/// Figs. 6–9 run at Fig. 4's scale with MLF-H / MLFS under modified
/// [`Params`]; this helper just forwards with a distinct name.
pub fn ablation(name: &str, x: f64, time_factor: f64, seed: u64) -> Experiment {
    let mut e = fig4(x, time_factor, seed);
    e.name = format!("{name}-x{x}");
    e
}

/// Schedulers compared in the fault sweep (robustness study): the
/// full MLFS pipeline against the strongest preemptive baseline and
/// the no-frills queue.
pub const FAULT_SWEEP_SCHEDULERS: [&str; 3] = ["MLFS", "Tiresias", "FIFO"];

/// Fault sweep (no paper counterpart; robustness extension): Fig. 4's
/// testbed workload with seeded random server crashes at the given
/// per-server MTBF (simulated hours). Jobs checkpoint every
/// `checkpoint_iters` iterations; crashed servers return after an
/// exponential ~30-minute MTTR. `mtbf_hours = 0` gives the no-fault
/// control cell.
pub fn fault_sweep(
    x: f64,
    time_factor: f64,
    mtbf_hours: f64,
    checkpoint_iters: u64,
    seed: u64,
) -> Experiment {
    let mut e = fig4(x, time_factor, seed);
    e.name = format!("fault-mtbf{mtbf_hours}-x{x}");
    e.sim.fault = Some(FaultConfig {
        mtbf_hours,
        mttr_hours: 0.5,
        schedule: Vec::new(),
        checkpoint_iters,
    });
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_matches_paper_setup() {
        let e = fig4(0.25, 8.0, 1);
        assert_eq!(e.sim.cluster.total_gpus(), 80);
        assert_eq!(e.trace.jobs, 155);
        assert_eq!(e.sim.tick, SimDuration::from_secs(60));
        // One week compressed 8× ≈ 21 h ≈ 1260 rounds.
        let rounds = e.expected_rounds();
        assert!((1200..=1300).contains(&rounds), "{rounds}");
    }

    #[test]
    fn fig5_scales_cluster_and_jobs_together() {
        let e = fig5(0.5, 0.02, 40.0, 1);
        assert_eq!(e.sim.cluster.servers, 11);
        assert_eq!(e.trace.jobs, (117_325.0f64 * 0.5 * 0.02).round() as usize);
    }

    #[test]
    fn scheduler_factory_covers_all_legends() {
        let e = fig4(0.25, 8.0, 1);
        for name in baselines::FIGURE_SCHEDULERS {
            let s = e.scheduler(name, 3);
            assert_eq!(s.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn unknown_scheduler_panics() {
        fig4(0.25, 8.0, 1).scheduler("what", 0);
    }

    #[test]
    fn fault_sweep_attaches_fault_config() {
        let e = fault_sweep(0.25, 8.0, 6.0, 50, 1);
        let fc = e.sim.fault.as_ref().expect("fault config attached");
        assert_eq!(fc.mtbf_hours, 6.0);
        assert_eq!(fc.checkpoint_iters, 50);
        assert!(e.name.contains("fault"));
        // The sweep's scheduler set resolves through the factory.
        for name in FAULT_SWEEP_SCHEDULERS {
            assert_eq!(e.scheduler(name, 3).name(), name);
        }
    }
}
