//! Per-round reward components (Eq. 7 ingredients).
//!
//! Eq. 1's five objectives are end-of-run quantities; RL training
//! needs a per-round signal. Following [35, 37] (and §3.4's windowed
//! cumulative reward), the engine summarises each inter-round window
//! into normalised components:
//!
//! * `g1` — inverse mean JCT of jobs completed in the window;
//! * `g2` — fraction of those completions that met their deadline;
//! * `g3` — inverse bandwidth transferred in the window;
//! * `g4` — fraction of completions meeting their accuracy target;
//! * `g5` — mean current accuracy across active and just-completed
//!   jobs.
//!
//! Each is in [0, 1]; the scheduler weights them (β for MLFS, `g1`
//! alone for the JCT-only RL baseline).

use mlfs::RewardComponents;
use serde::{Deserialize, Serialize};

/// Raw window measurements collected by the engine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WindowStats {
    /// JCTs (minutes) of jobs completed in the window.
    pub completed_jct_mins: Vec<f64>,
    /// How many of those met their deadline.
    pub completed_met_deadline: usize,
    /// How many met their accuracy requirement.
    pub completed_met_accuracy: usize,
    /// MB transferred across servers during the window.
    pub transferred_mb: f64,
    /// Mean accuracy over currently active jobs (already averaged).
    pub mean_active_accuracy: f64,
}

/// Normalise a window into reward components.
pub fn components(w: &WindowStats) -> RewardComponents {
    let n = w.completed_jct_mins.len();
    let (g1, g2, g4) = if n > 0 {
        let mean_jct = w.completed_jct_mins.iter().sum::<f64>() / n as f64;
        (
            1.0 / (1.0 + mean_jct / 100.0),
            w.completed_met_deadline as f64 / n as f64,
            w.completed_met_accuracy as f64 / n as f64,
        )
    } else {
        (0.0, 0.0, 0.0)
    };
    let g3 = 1.0 / (1.0 + w.transferred_mb / 10_000.0);
    let g5 = w.mean_active_accuracy.clamp(0.0, 1.0);
    RewardComponents {
        g: [g1, g2, g3, g4, g5],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_is_mostly_zero() {
        let c = components(&WindowStats::default());
        assert_eq!(c.g[0], 0.0);
        assert_eq!(c.g[1], 0.0);
        assert_eq!(c.g[2], 1.0); // no traffic = perfect bandwidth score
        assert_eq!(c.g[3], 0.0);
        assert_eq!(c.g[4], 0.0);
    }

    #[test]
    fn faster_jcts_score_higher() {
        let fast = components(&WindowStats {
            completed_jct_mins: vec![10.0],
            ..Default::default()
        });
        let slow = components(&WindowStats {
            completed_jct_mins: vec![500.0],
            ..Default::default()
        });
        assert!(fast.g[0] > slow.g[0]);
    }

    #[test]
    fn ratios_and_bounds() {
        let c = components(&WindowStats {
            completed_jct_mins: vec![50.0, 100.0],
            completed_met_deadline: 1,
            completed_met_accuracy: 2,
            transferred_mb: 10_000.0,
            mean_active_accuracy: 0.8,
        });
        assert_eq!(c.g[1], 0.5);
        assert_eq!(c.g[3], 1.0);
        assert_eq!(c.g[2], 0.5);
        assert_eq!(c.g[4], 0.8);
        for g in c.g {
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn weighted_combination_matches_eq7() {
        let c = RewardComponents {
            g: [0.1, 0.2, 0.3, 0.4, 0.5],
        };
        let beta = [0.5, 0.55, 0.25, 0.15, 0.15];
        let expect = 0.05 + 0.11 + 0.075 + 0.06 + 0.075;
        assert!((c.weighted(&beta) - expect).abs() < 1e-12);
    }
}
