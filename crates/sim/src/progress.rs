//! Fluid training-progress model.
//!
//! Between scheduling rounds the engine advances each job at a
//! constant *iteration rate* derived from its current placement:
//!
//! * each placed task contributes its compute time divided by its
//!   GPU's contention speed factor;
//! * each DAG edge whose endpoints sit on different servers
//!   contributes `comm_mb / bandwidth`;
//! * parameter accumulation adds the slowest sink→PS transfer
//!   (parameter-server jobs) or the slowest ring-neighbour exchange
//!   (all-reduce jobs);
//! * synchronous training makes the iteration time the *critical
//!   path* through this weighted DAG.
//!
//! Two placement-coverage semantics:
//!
//! * [`ProgressModel::Gang`] — a job progresses only with every task
//!   placed (strict synchronous training);
//! * [`ProgressModel::Pipelined`] (default) — the maximal
//!   ancestor-closed *prefix* of placed tasks progresses,
//!   at a rate scaled by the prefix's share of model parameters
//!   (micro-batching keeps a partial pipeline busy). This makes the
//!   paper's spatial priority — place upstream tasks first — matter
//!   within a job, not just across jobs.

use cluster::{Cluster, ServerId};
use serde::{Deserialize, Serialize};
use workload::{CommStructure, JobState, TaskRunState};

/// Placement-coverage semantics for partial placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProgressModel {
    /// All tasks placed or no progress.
    Gang,
    /// Ancestor-closed placed prefix progresses proportionally.
    Pipelined,
}

/// A job's progress snapshot: iteration rate and the cross-server
/// traffic it generates per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JobRate {
    /// Iterations per second (0 when the job cannot progress).
    pub iters_per_sec: f64,
    /// MB crossing server boundaries per iteration (bandwidth-cost
    /// accrual).
    pub cross_mb_per_iter: f64,
}

/// Where task `idx` of `job` is placed, according to the job state.
fn location(job: &JobState, idx: usize) -> Option<(ServerId, usize)> {
    match job.task_states.get(idx) {
        Some(TaskRunState::Running { server, gpu }) => Some((*server, *gpu)),
        _ => None,
    }
}

/// Compute the job's current [`JobRate`] given the cluster state.
pub fn job_rate(job: &JobState, cluster: &Cluster, model: ProgressModel) -> JobRate {
    if job.is_finished() {
        return JobRate::default();
    }
    let spec = &job.spec;
    let n = spec.dag.len();

    // Which tasks are placed?
    let placed: Vec<Option<(ServerId, usize)>> =
        (0..spec.task_count()).map(|i| location(job, i)).collect();
    let placed_at = |i: usize| placed.get(i).copied().flatten();

    // A parameter server is required infrastructure: without it the
    // workers have nowhere to send results.
    if spec.has_param_server() && placed_at(n).is_none() {
        return JobRate::default();
    }

    // Determine the active set.
    let active: Vec<bool> = match model {
        ProgressModel::Gang => {
            if (0..n).any(|i| placed_at(i).is_none()) {
                return JobRate::default();
            }
            vec![true; n]
        }
        ProgressModel::Pipelined => {
            // Ancestor-closed prefix: a task is active iff it is
            // placed and all its parents are active.
            let order = spec.dag.topological_order();
            let mut active = vec![false; n];
            for &k in order {
                let k = k as usize;
                let parents_ok = spec
                    .dag
                    .parents(k)
                    .iter()
                    .all(|&p| active.get(p as usize).copied().unwrap_or(false));
                let on = placed_at(k).is_some() && parents_ok;
                if let Some(slot) = active.get_mut(k) {
                    *slot = on;
                }
            }
            active
        }
    };
    if !active.iter().any(|&a| a) {
        return JobRate::default();
    }

    // Critical path over the active subgraph with compute node
    // weights (contention-adjusted) and cross-server edge weights.
    let is_active = |i: usize| active.get(i).copied().unwrap_or(false);
    let topo = spec.dag.topological_order();
    let mut finish = vec![0.0f64; n];
    let mut cross_mb = 0.0;
    let topology = cluster.topology();
    for &k in topo {
        let k = k as usize;
        if !is_active(k) {
            continue;
        }
        // Active implies placed by construction; skip, never panic.
        let Some((server, gpu)) = placed_at(k) else {
            continue;
        };
        let Some(task) = spec.tasks.get(k) else {
            continue;
        };
        let speed = cluster.server(server).gpu_speed_factor(gpu);
        let compute = task.compute.as_secs_f64() / speed.max(1e-6);
        let mut start: f64 = 0.0;
        for &p in spec.dag.parents(k) {
            let p = p as usize;
            if !is_active(p) {
                continue;
            }
            let Some((pserver, _)) = placed_at(p) else {
                continue;
            };
            let link = if pserver == server {
                0.0
            } else {
                cross_mb += spec.comm_mb;
                topology
                    .transfer_time(pserver, server, spec.comm_mb)
                    .as_secs_f64()
            };
            start = start.max(finish.get(p).copied().unwrap_or(0.0) + link);
        }
        if let Some(slot) = finish.get_mut(k) {
            *slot = start + compute;
        }
    }
    let mut path = finish
        .iter()
        .zip(&active)
        .filter(|(_, a)| **a)
        .map(|(f, _)| *f)
        .fold(0.0, f64::max);

    // Parameter accumulation.
    let sinks: Vec<usize> = spec
        .dag
        .sinks()
        .iter()
        .map(|s| *s as usize)
        .filter(|&s| is_active(s))
        .collect();
    match spec.comm {
        CommStructure::ParameterServer => {
            // Guarded by the has_param_server early return above.
            let (Some((ps_server, ps_gpu)), Some(ps_task)) = (placed_at(n), spec.tasks.get(n))
            else {
                return JobRate::default();
            };
            let ps_speed = cluster.server(ps_server).gpu_speed_factor(ps_gpu);
            let ps_compute = ps_task.compute.as_secs_f64() / ps_speed.max(1e-6);
            let mut sync: f64 = 0.0;
            for &s in &sinks {
                let Some((sserver, _)) = placed_at(s) else {
                    continue;
                };
                if sserver != ps_server {
                    cross_mb += spec.comm_mb;
                    sync = sync.max(
                        topology
                            .transfer_time(sserver, ps_server, spec.comm_mb)
                            .as_secs_f64(),
                    );
                }
            }
            path += sync + ps_compute;
        }
        CommStructure::AllReduce => {
            // Ring exchange between consecutive sinks.
            let mut sync: f64 = 0.0;
            if sinks.len() > 1 {
                for w in 0..sinks.len() {
                    let here = sinks.get(w).copied();
                    let next = sinks.get((w + 1) % sinks.len()).copied();
                    let (Some((a, _)), Some((b, _))) =
                        (here.and_then(&placed_at), next.and_then(&placed_at))
                    else {
                        continue;
                    };
                    if a != b {
                        cross_mb += spec.comm_mb;
                        sync = sync.max(topology.transfer_time(a, b, spec.comm_mb).as_secs_f64());
                    }
                }
            }
            path += sync;
        }
    }

    if path <= 0.0 {
        return JobRate::default();
    }

    // Pipelined partial placements progress *sub-linearly* in the
    // placed parameter mass: the prefix's own critical path shrinks
    // with it, so a naive `fraction / path_prefix` would let a tiny
    // prefix progress at the full job rate (free-riding on missing
    // stages). `fraction² / path_prefix` is linear in mass for a
    // uniform chain and exact (`1/path`) at full placement.
    let fraction = match model {
        ProgressModel::Gang => 1.0,
        ProgressModel::Pipelined => {
            let mass: f64 = (0..n)
                .filter(|&k| is_active(k))
                .map(|k| spec.normalized_partition(k))
                .sum();
            mass.clamp(0.0, 1.0)
        }
    };
    if fraction <= 0.0 {
        return JobRate::default();
    }
    JobRate {
        iters_per_sec: fraction * fraction / path,
        cross_mb_per_iter: cross_mb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterConfig, JobId, ResourceVec, TaskId, Topology};
    use simcore::{SimDuration, SimTime};
    use workload::dag::Dag;
    use workload::job::{JobSpec, StopPolicy, TaskSpec};
    use workload::{LearningProfile, MlAlgorithm};

    fn cluster() -> Cluster {
        Cluster::new(&ClusterConfig {
            servers: 3,
            gpus_per_server: 2,
            gpu_capacity: 1.0,
            cpu_cores: 16.0,
            memory_gb: 128.0,
            nic_mbps: 1000.0,
            topology: Topology::Flat {
                inter_mbps: 100.0, // 100 MB at 100 MB/s = 1 s per link
                intra_mbps: 1e9,
            },
        })
    }

    fn job(n: usize, ps: bool, comm: CommStructure) -> JobState {
        let jid = JobId(1);
        let mut tasks: Vec<TaskSpec> = (0..n)
            .map(|i| TaskSpec {
                id: TaskId::new(jid, i as u16),
                partition_mb: 100.0,
                demand: ResourceVec::new(0.5, 2.0, 8.0, 50.0),
                gpu_share: 0.5,
                compute: SimDuration::from_secs(1),
                is_param_server: false,
            })
            .collect();
        if ps {
            tasks.push(TaskSpec {
                id: TaskId::new(jid, n as u16),
                partition_mb: 0.0,
                demand: ResourceVec::new(0.0, 1.0, 1.0, 50.0),
                gpu_share: 0.0,
                compute: SimDuration::from_secs_f64(0.5),
                is_param_server: true,
            });
        }
        let spec = JobSpec {
            id: jid,
            algorithm: MlAlgorithm::Mlp,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_hours(6),
            required_accuracy: 0.6,
            urgency: 5,
            max_iterations: 100,
            tasks,
            dag: Dag::sequential(n),
            comm,
            comm_mb: 100.0,
            model_mb: 100.0 * n as f64,
            train_data_mb: 300.0,
            curve: LearningProfile::new(2.0, 0.2, 0.05, 0.9),
            stop_policy: StopPolicy::MaxIterations,
            allow_demotion: true,
            predicted_runtime: SimDuration::from_hours(1),
            previously_run: true,
        };
        JobState::new(spec, SimTime::ZERO)
    }

    fn place(c: &mut Cluster, j: &mut JobState, idx: usize, server: u32) {
        let t = TaskId::new(j.spec.id, idx as u16);
        let spec = &j.spec.tasks[idx];
        let gpu = c
            .place(t, ServerId(server), spec.demand, spec.gpu_share)
            .unwrap();
        j.task_states[idx] = TaskRunState::Running {
            server: ServerId(server),
            gpu,
        };
    }

    #[test]
    fn unplaced_job_has_zero_rate() {
        let c = cluster();
        let j = job(2, false, CommStructure::AllReduce);
        let r = job_rate(&j, &c, ProgressModel::Pipelined);
        assert_eq!(r.iters_per_sec, 0.0);
        assert_eq!(job_rate(&j, &c, ProgressModel::Gang).iters_per_sec, 0.0);
    }

    #[test]
    fn colocated_chain_runs_at_compute_speed() {
        let mut c = cluster();
        let mut j = job(2, false, CommStructure::AllReduce);
        place(&mut c, &mut j, 0, 0);
        place(&mut c, &mut j, 1, 0);
        let r = job_rate(&j, &c, ProgressModel::Gang);
        // 2 tasks × 1 s compute, no cross-server comm, one sink (no
        // all-reduce partner) → 2 s per iteration.
        assert!((r.iters_per_sec - 0.5).abs() < 1e-9, "{r:?}");
        assert_eq!(r.cross_mb_per_iter, 0.0);
    }

    #[test]
    fn cross_server_edge_adds_latency_and_traffic() {
        let mut c = cluster();
        let mut j = job(2, false, CommStructure::AllReduce);
        place(&mut c, &mut j, 0, 0);
        place(&mut c, &mut j, 1, 1);
        let r = job_rate(&j, &c, ProgressModel::Gang);
        // 1 s + 1 s link + 1 s = 3 s per iteration; 100 MB per iter.
        assert!((r.iters_per_sec - 1.0 / 3.0).abs() < 1e-9, "{r:?}");
        assert!((r.cross_mb_per_iter - 100.0).abs() < 1e-9);
    }

    #[test]
    fn gang_blocks_on_partial_placement_pipelined_does_not() {
        let mut c = cluster();
        let mut j = job(3, false, CommStructure::AllReduce);
        place(&mut c, &mut j, 0, 0); // only the chain head
        assert_eq!(job_rate(&j, &c, ProgressModel::Gang).iters_per_sec, 0.0);
        let r = job_rate(&j, &c, ProgressModel::Pipelined);
        // Prefix = task 0: mass 1/3, prefix path 1 s → fraction² /
        // path = 1/9 iter/s (sub-linear: a 1-of-3 prefix must not
        // free-ride at the full job rate).
        assert!((r.iters_per_sec - 1.0 / 9.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn pipelined_requires_ancestor_closure() {
        let mut c = cluster();
        let mut j = job(3, false, CommStructure::AllReduce);
        // Only the chain *tail* placed: no ancestor-closed prefix.
        place(&mut c, &mut j, 2, 0);
        let r = job_rate(&j, &c, ProgressModel::Pipelined);
        assert_eq!(r.iters_per_sec, 0.0);
    }

    #[test]
    fn param_server_is_mandatory_and_adds_time() {
        let mut c = cluster();
        let mut j = job(1, true, CommStructure::ParameterServer);
        place(&mut c, &mut j, 0, 0);
        // PS missing → no progress even though the worker is placed.
        assert_eq!(
            job_rate(&j, &c, ProgressModel::Pipelined).iters_per_sec,
            0.0
        );
        place(&mut c, &mut j, 1, 1); // PS on another server
        let r = job_rate(&j, &c, ProgressModel::Pipelined);
        // 1 s worker + 1 s sink→PS link + 0.5 s PS = 2.5 s.
        assert!((r.iters_per_sec - 1.0 / 2.5).abs() < 1e-9, "{r:?}");
        assert!((r.cross_mb_per_iter - 100.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_contention_slows_iteration() {
        let mut c = cluster();
        let mut j = job(1, false, CommStructure::AllReduce);
        place(&mut c, &mut j, 0, 0);
        let before = job_rate(&j, &c, ProgressModel::Gang).iters_per_sec;
        // Overload the same GPU with a foreign task.
        let gpu = match j.task_states[0] {
            TaskRunState::Running { gpu, .. } => gpu,
            _ => unreachable!(),
        };
        c.place_on_gpu(
            TaskId::new(JobId(9), 0),
            ServerId(0),
            ResourceVec::new(1.5, 1.0, 1.0, 1.0),
            1.5,
            gpu,
        )
        .unwrap();
        let after = job_rate(&j, &c, ProgressModel::Gang).iters_per_sec;
        assert!(after < before * 0.6, "before {before}, after {after}");
    }

    #[test]
    fn allreduce_ring_counts_cross_links() {
        let mut c = cluster();
        let mut j = job(2, false, CommStructure::AllReduce);
        // Two independent sinks? A 2-chain has one sink; rebuild as
        // independent for the ring test.
        j.spec.dag = Dag::independent(2);
        place(&mut c, &mut j, 0, 0);
        place(&mut c, &mut j, 1, 1);
        let r = job_rate(&j, &c, ProgressModel::Gang);
        // Ring of 2: both directions cross → 200 MB, sync 1 s.
        // Compute is parallel (1 s), so iteration = 2 s.
        assert!((r.iters_per_sec - 0.5).abs() < 1e-9, "{r:?}");
        assert!((r.cross_mb_per_iter - 200.0).abs() < 1e-9);
    }

    #[test]
    fn finished_job_has_zero_rate() {
        let mut c = cluster();
        let mut j = job(1, false, CommStructure::AllReduce);
        place(&mut c, &mut j, 0, 0);
        j.finish(SimTime::from_secs(10), workload::StopReason::MaxIterations);
        assert_eq!(
            job_rate(&j, &c, ProgressModel::Pipelined).iters_per_sec,
            0.0
        );
    }
}
