//! # mlfs-sim — the experiment engine
//!
//! Binds cluster + workload + scheduler into a discrete-event
//! simulation and measures everything the paper's figures report.
//!
//! * [`progress`] — the fluid training-progress model: per-job
//!   iteration time from compute (with GPU-contention slowdown) and
//!   cross-server communication along the task DAG, under either
//!   *gang* semantics (all tasks placed or no progress) or the default
//!   *pipelined* semantics (an ancestor-closed placed prefix makes
//!   proportional progress — this is what makes the paper's
//!   within-DAG task ordering matter).
//! * [`reward`] — per-round normalisation of the five Eq. 1 objective
//!   components into [`mlfs::RewardComponents`] for the RL schedulers.
//! * [`engine`] — the event loop: arrivals, per-minute scheduler
//!   rounds, sub-round completion events, bandwidth accounting,
//!   deadline-accuracy freezing, action validation, decision-time
//!   measurement, and optional straggler injection.
//! * [`experiments`] — ready-made configurations for every figure of
//!   the paper (used by the `mlfs-bench` binaries, the examples and
//!   the integration tests).
//!
//! # Example
//!
//! Run a small MLFS experiment end to end:
//!
//! ```
//! use mlfs_sim::engine::{run, SimConfig};
//! use simcore::SimDuration;
//! use workload::{TraceConfig, TraceGenerator};
//!
//! // A tiny workload: 10 jobs over half an hour. Time factor 1 —
//! // `SimConfig::default()` models the uncompressed network (the
//! // figure experiments in [`experiments`] compress both together).
//! let mut trace = TraceConfig::paper_real(1.0, 1.0, 7);
//! trace.jobs = 10;
//! trace.span = SimDuration::from_mins(30);
//! trace.duration_median_mins = 5.0;
//! let jobs = TraceGenerator::new(trace).generate();
//!
//! let mut scheduler = mlfs::Mlfs::heuristic(mlfs::Params::default());
//! let metrics = run(SimConfig::default(), jobs, &mut scheduler);
//!
//! assert_eq!(metrics.jobs_submitted, 10);
//! assert!(metrics.jobs.iter().all(|j| j.finished.is_some()));
//! assert!(metrics.avg_jct_mins() > 0.0);
//! ```

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod experiments;
pub mod progress;
pub mod reward;

pub use engine::{
    FaultConfig, FaultEvent, SimConfig, SimSnapshot, Simulation, StepOutcome, StragglerConfig,
};
pub use progress::ProgressModel;
