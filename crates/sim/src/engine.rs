//! The discrete-event simulation engine.
//!
//! Time advances in scheduler rounds ("the job scheduler runs every
//! minute", §4.1). Between rounds the fluid progress model runs with
//! *exact* sub-round completion events: when a job will finish before
//! the next round, the engine advances precisely to that instant,
//! frees its resources, and recomputes the surviving jobs' rates
//! (freed GPUs can speed co-located tasks up). Deadline crossings are
//! interpolated the same way, so "accuracy by deadline" is exact under
//! the fluid model.
//!
//! The engine validates every scheduler action; invalid actions are
//! counted (`RunMetrics::invalid_actions`) and skipped rather than
//! corrupting state. Scheduler decision time is measured around each
//! `schedule` call with a monotonic wall clock (Fig. 4h).
//!
//! # Two interchangeable engines
//!
//! The world-advancement loop exists twice, selected by
//! [`SimConfig::engine`]:
//!
//! * [`EngineMode::Naive`] — the reference implementation: every
//!   sub-step recomputes every unfinished job's rate and scans every
//!   job slot. O(jobs) per sub-step, trivially correct, kept verbatim
//!   as the ground truth the fast engine is checked against.
//! * [`EngineMode::EventDriven`] (default) — a calendar of
//!   next-interesting-times. Arrivals come from the sorted pending
//!   list, deadline crossings from a [`simcore::EventQueue`], and
//!   completion candidates from an O(running) scan over the set of
//!   jobs that hold placed tasks, using per-window cached rates
//!   (invalidated only for jobs co-located with a mid-window
//!   completion — `job_rate` is a pure function of placements and
//!   per-server GPU load, so every other cached value is still
//!   bit-exact). Idle jobs accrue waiting time in one lazy batch per
//!   window (integer-millisecond addition is associative, so the batch
//!   telescopes to the very sum the naive loop computes).
//!
//! Both engines produce **bit-identical** `RunMetrics` for every
//! scheduler; `engine_determinism` in the bench suite proves it for
//! all ten figure schedulers and the in-crate tests cover straggler
//! and fault configurations. Scheduler invocation stays round-aligned
//! in both modes — the calendar only accelerates the world *between*
//! rounds and skips quiescent stretches.

use crate::progress::{job_rate, JobRate, ProgressModel};
use crate::reward::{components, WindowStats};
use cluster::{Cluster, ClusterConfig, JobId, ServerId, TaskId};
use metrics::{FaultRecord, JobRecord, RunMetrics};
use mlfs::placement::migration_state_mb;
use mlfs::{Action, Scheduler, SchedulerContext};
use serde::{Deserialize, Serialize};
use simcore::{EventQueue, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant; // lint:allow(cfg-std-time) reason="wall-time decision-latency metrics only; never feeds simulated time or scheduling state"
use workload::{JobArena, JobSpec, JobState, StopReason, TaskRunState};

/// Straggler injection (the paper's §3.3.3 "future work" extension).
#[derive(Debug, Clone, Copy)]
pub struct StragglerConfig {
    /// Probability per running task per simulated hour of becoming a
    /// straggler.
    pub probability_per_hour: f64,
    /// Rate multiplier applied to a job with a straggling task.
    pub slowdown: f64,
    /// Replicate stragglers: a replica takes over one round later
    /// (charging one state transfer), ending the slowdown.
    pub replicate: bool,
}

/// One trace-driven server failure.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    /// When the server crashes.
    pub at: SimTime,
    /// Which server crashes.
    pub server: ServerId,
    /// How long it stays down before recovering.
    pub down_for: SimDuration,
}

/// Fault injection: a seeded server crash/recovery process plus
/// checkpointed task recovery. On a crash every task on the server is
/// evicted and re-enqueued, and each affected job rolls back to its
/// last checkpoint boundary (the work since then is lost and charged
/// to `RunMetrics::lost_gpu_hours`).
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Mean time between failures per server, in simulated hours
    /// (memoryless: each up server crashes with probability
    /// `tick/MTBF` per round). `<= 0` disables the random process —
    /// only `schedule` events fire.
    pub mtbf_hours: f64,
    /// Mean time to recovery in hours for randomly crashed servers
    /// (exponential holdoff, at least one round). `<= 0` means one
    /// round of downtime.
    pub mttr_hours: f64,
    /// Trace-driven failures applied in addition to the random
    /// process (sorted internally by time).
    pub schedule: Vec<FaultEvent>,
    /// Checkpoint interval in whole iterations: a crashed job resumes
    /// from the last multiple of this. `0` behaves as `1` (per-
    /// iteration checkpointing — nothing is ever lost but the
    /// eviction itself).
    pub checkpoint_iters: u64,
}

/// Which world-advancement loop to run (see the module docs). The
/// two modes are bit-identical in every `RunMetrics` field except the
/// wall-clock observability ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Reference engine: O(jobs) scans every sub-step and every round.
    Naive,
    /// Calendar-driven engine: O(running + changes) per sub-step.
    #[default]
    EventDriven,
}

/// What [`Simulation::step`] left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More rounds are due: active jobs or pending arrivals remain.
    Continue,
    /// No active jobs and no pending arrivals. The simulation is
    /// quiescent, not dead — [`Simulation::inject_job`] followed by
    /// another `step` resumes it.
    Drained,
    /// The `max_time` horizon was crossed; the world was advanced to
    /// the horizon one last time.
    Horizon,
}

/// A serializable image of the full engine state at a round boundary.
///
/// Produced by [`Simulation::snapshot`], consumed by
/// [`Simulation::restore`]. Together with the (non-serialized)
/// [`SimConfig`] it captures everything a resumed run needs to stay
/// bit-identical to the uninterrupted one: job states, queue order,
/// the unadmitted arrival tail, both RNG streams, window/reward
/// accumulators, fault bookkeeping and the deterministic telemetry
/// counters. RNG states travel as `Vec<u64>` (fixed-size arrays are
/// outside the vendored serde subset).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSnapshot {
    /// Simulated clock at the snapshot.
    pub now: SimTime,
    /// Start of the current inter-round window (`last` in the loop).
    pub last: SimTime,
    /// Whether [`Simulation::begin`] already ran.
    pub begun: bool,
    /// Every job slot, dense-id order.
    pub jobs: Vec<(JobId, JobState)>,
    /// The wait queue, in order (order is scheduler-visible).
    pub queue: Vec<TaskId>,
    /// Arrivals not yet admitted, still sorted by arrival time.
    pub pending: Vec<JobSpec>,
    /// Metrics accumulated so far (wall-clock fields included; strip
    /// them with `RunMetrics::clear_wall_clock` when comparing runs).
    pub metrics: RunMetrics,
    /// Reward-window accumulators.
    pub window: WindowStats,
    /// Tasks currently straggling.
    pub stragglers: BTreeSet<TaskId>,
    /// Straggler RNG stream (xoshiro256** state words).
    pub rng: Vec<u64>,
    /// Fault RNG stream (xoshiro256** state words).
    pub fault_rng: Vec<u64>,
    /// Cumulative transfer MB already charged to `window`.
    pub bandwidth_charged_mb: f64,
    /// Cursor into the scheduled fault trace.
    pub next_scheduled_fault: usize,
    /// Pending server recoveries (time, server).
    pub recoveries: Vec<(SimTime, ServerId)>,
    /// Jobs admitted since the last `step` (stream-scheduler input).
    pub arrived_this_round: Vec<JobId>,
    /// Full cluster state (placements, load, transfer accounting).
    pub cluster: cluster::ClusterSnapshot,
    /// Deterministic telemetry counters, [`obs::Counter::ALL`] order.
    pub telemetry_counts: Vec<u64>,
}

/// Defensive `Vec<u64>` → `[u64; 4]` for RNG state restore.
fn rng_state(words: &[u64]) -> [u64; 4] {
    let mut s = [0u64; 4];
    for (slot, w) in s.iter_mut().zip(words) {
        *slot = *w;
    }
    s
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster shape.
    pub cluster: ClusterConfig,
    /// Scheduler round period (paper: one minute).
    pub tick: SimDuration,
    /// Progress semantics.
    pub progress: ProgressModel,
    /// Overload threshold used for the overload-occurrence statistic.
    pub h_r: f64,
    /// Hard stop for the simulation clock.
    pub max_time: SimDuration,
    /// Optional straggler injection.
    pub straggler: Option<StragglerConfig>,
    /// Optional fault injection (server crashes + checkpointed
    /// recovery). `None` leaves every run bit-identical to an engine
    /// without the fault subsystem.
    pub fault: Option<FaultConfig>,
    /// Amplitude of time-varying task utilization (0 disables). Real
    /// tasks do not draw their mean demand every minute (the Philly
    /// trace reports per-minute utilization); each placed task's live
    /// demand oscillates around its mean by up to this fraction, which
    /// is what makes servers *overload* after admission and gives the
    /// migration machinery (Fig. 8) something to do.
    pub utilization_noise: f64,
    /// Engine RNG seed. It drives straggler injection directly and
    /// fault injection through a forked stream (so enabling one never
    /// perturbs the other); utilization noise is hash-based and
    /// everything else is deterministic.
    pub seed: u64,
    /// Record a per-round cluster timeline into
    /// `RunMetrics::timeline` (off by default: large runs would carry
    /// tens of thousands of samples).
    pub record_timeline: bool,
    /// Trace sink for the obs layer. `Disabled` (the default) reduces
    /// every event site to one relaxed atomic load; the deterministic
    /// telemetry counters accumulate either way, so enabling a sink
    /// never changes `RunMetrics` beyond wall-clock fields.
    pub trace: obs::TraceConfig,
    /// World-advancement engine (default: event-driven).
    pub engine: EngineMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cluster: ClusterConfig::paper_testbed(),
            tick: SimDuration::from_secs(60),
            progress: ProgressModel::Pipelined,
            h_r: 0.9,
            max_time: SimDuration::from_hours(24 * 60),
            straggler: None,
            fault: None,
            utilization_noise: 0.05,
            seed: 42,
            record_timeline: false,
            trace: obs::TraceConfig::default(),
            engine: EngineMode::default(),
        }
    }
}

/// A per-window cached progress rate for one running job (event
/// engine only). `rate` already folds in any straggler slowdown;
/// `gpu_share` is the job's total placed GPU share — constant within a
/// window because placements only change between rounds or when the
/// job itself completes.
#[derive(Debug, Clone, Copy)]
struct CachedRate {
    rate: JobRate,
    gpu_share: f64,
}

/// The live simulation.
pub struct Simulation {
    cfg: SimConfig,
    cluster: Cluster,
    jobs: JobArena,
    queue: Vec<TaskId>,
    /// Pending arrivals, ascending by arrival time; `next_arrival`
    /// indexes into it.
    pending: Vec<JobSpec>,
    next_arrival: usize,
    now: SimTime,
    /// Where the previous round's world advancement stopped — the
    /// start of the next `advance` window. Maintained by
    /// [`Simulation::step`].
    last: SimTime,
    /// Whether [`Simulation::begin`] ran (clock jumped to the first
    /// arrival).
    begun: bool,
    /// Jobs admitted since the previous scheduling round, in
    /// admission order; handed to `Scheduler::schedule_stream` and
    /// cleared each round.
    arrived_this_round: Vec<JobId>,
    metrics: RunMetrics,
    window: WindowStats,
    stragglers: BTreeSet<TaskId>,
    rng: SimRng,
    bandwidth_charged_mb: f64,
    /// Unfinished jobs, ascending id (mirrors the arena's order).
    active: BTreeSet<JobId>,
    /// Jobs holding at least one `Running` task, ascending id.
    running: BTreeSet<JobId>,
    /// Event engine: per-window cached rates for the running set.
    rate_cache: BTreeMap<JobId, CachedRate>,
    /// Event engine: pending deadline crossings.
    deadline_cal: EventQueue<JobId>,
    /// Event engine: servers that lost tasks to a mid-window
    /// completion; drained to invalidate co-located cached rates.
    freed_servers: Vec<ServerId>,
    /// Event engine: placed tasks awaiting one batched queue purge.
    queue_tombstones: BTreeSet<TaskId>,
    /// Worker count for the fork-join rate pass (from
    /// `MLFS_SIM_THREADS` / available parallelism; output is
    /// thread-count invariant).
    sim_threads: usize,
    /// Independent RNG stream for fault injection, forked from the
    /// seed so enabling faults never perturbs straggler sampling.
    fault_rng: SimRng,
    /// Next unfired entry of the (time-sorted) trace-driven schedule.
    next_scheduled_fault: usize,
    /// Pending recoveries `(when, server)`, kept sorted ascending.
    recoveries: Vec<(SimTime, ServerId)>,
    /// The run's telemetry hub; shared with the scheduler via
    /// `attach_tracer` and readable by callers through
    /// [`Simulation::tracer`].
    tracer: std::sync::Arc<obs::Tracer>,
}

/// Stream label for the fault-injection RNG fork.
const FAULT_RNG_STREAM: u64 = 0xFA17;

/// Running-set size below which the rate-cache rebuild stays serial
/// (fork-join setup would cost more than it saves).
const PAR_RATE_THRESHOLD: usize = 64;

impl Simulation {
    /// Build a simulation over `specs` (any order; sorted internally).
    pub fn new(mut cfg: SimConfig, mut specs: Vec<JobSpec>) -> Self {
        specs.sort_by_key(|s| s.arrival);
        if let Some(fc) = &mut cfg.fault {
            fc.schedule.sort_by_key(|e| (e.at, e.server.0));
        }
        let mut cluster = Cluster::new(&cfg.cluster);
        // Track the overload index at the engine's threshold so every
        // per-round overload query is an index read, not a scan.
        cluster.set_overload_threshold(cfg.h_r);
        let metrics = RunMetrics {
            jobs_submitted: specs.len(),
            ..Default::default()
        };
        let rng = SimRng::new(cfg.seed);
        let fault_rng = rng.fork(FAULT_RNG_STREAM);
        // A sink that fails to open (JSONL path) degrades to the
        // disabled tracer rather than aborting the run: tracing is an
        // observability concern and must never take the science down.
        let tracer = std::sync::Arc::new(
            obs::Tracer::from_config(&cfg.trace).unwrap_or_else(|_| obs::Tracer::disabled()),
        );
        Simulation {
            cfg,
            cluster,
            jobs: JobArena::new(),
            queue: Vec::new(),
            pending: specs,
            next_arrival: 0,
            now: SimTime::ZERO,
            last: SimTime::ZERO,
            begun: false,
            arrived_this_round: Vec::new(),
            metrics,
            window: WindowStats::default(),
            stragglers: BTreeSet::new(),
            rng,
            bandwidth_charged_mb: 0.0,
            active: BTreeSet::new(),
            running: BTreeSet::new(),
            rate_cache: BTreeMap::new(),
            deadline_cal: EventQueue::new(),
            freed_servers: Vec::new(),
            queue_tombstones: BTreeSet::new(),
            sim_threads: simcore::sim_threads(),
            fault_rng,
            next_scheduled_fault: 0,
            recoveries: Vec::new(),
            tracer,
        }
    }

    /// Re-derive `id`'s membership in the active/running index sets
    /// from its current state. Called after every mutation that can
    /// change placement or finish a job; cheap (two `BTreeSet` probes
    /// plus an O(tasks) count), and maintained in both engine modes so
    /// the sets are always trustworthy.
    fn sync_job_sets(&mut self, id: JobId) {
        match self.jobs.get(&id) {
            Some(j) if !j.is_finished() => {
                self.active.insert(id);
                if j.running_tasks() > 0 {
                    self.running.insert(id);
                } else {
                    self.running.remove(&id);
                    self.rate_cache.remove(&id);
                }
            }
            _ => {
                self.active.remove(&id);
                self.running.remove(&id);
                self.rate_cache.remove(&id);
            }
        }
    }

    /// Handle to the run's telemetry hub. Clone it before `run` (which
    /// consumes the simulation) to read folded span stacks, ring-
    /// buffered events, or counter snapshots afterwards.
    pub fn tracer(&self) -> std::sync::Arc<obs::Tracer> {
        self.tracer.clone()
    }

    /// Prepare for stepping: hand the scheduler the telemetry hub and
    /// jump the clock to the first pending arrival. The clock jump
    /// happens once; re-attaching the tracer is harmless, so calling
    /// `begin` again (e.g. with a fresh scheduler after
    /// [`Simulation::restore`]) is safe.
    pub fn begin(&mut self, scheduler: &mut dyn Scheduler) {
        scheduler.attach_tracer(self.tracer.clone());
        if self.begun {
            return;
        }
        self.begun = true;
        // Jump to the first arrival.
        if let Some(first) = self.pending.get(self.next_arrival) {
            self.now = first.arrival;
        }
        self.last = self.now;
    }

    /// Execute one scheduling round: advance the world to `now`,
    /// inject faults, account the reward window, invoke the scheduler
    /// (streaming entry point), apply its actions, and pick the next
    /// round time. Returns whether another round is due.
    ///
    /// This is the decision core the batch [`Simulation::run`] loop
    /// and the streaming front-end (`crates/service`) share; a
    /// [`StepOutcome::Drained`] simulation resumes cleanly if
    /// [`Simulation::inject_job`] delivers new work later.
    pub fn step(&mut self, scheduler: &mut dyn Scheduler) -> StepOutcome {
        let tracer = self.tracer.clone();
        let _round_span = obs::span!(tracer, round);
        obs::event!(
            tracer,
            RoundStart {
                round: self.metrics.rounds + 1,
                t: self.now.as_mins_f64(),
                queued: self.queue.len() as u32,
            }
        );
        // Advance the world to `now` (arrivals, progress,
        // completions, deadline freezes).
        self.advance(self.last, self.now);
        self.last = self.now;

        // Fault injection (recoveries, then crashes) happens
        // before the scheduler observes the cluster, so it sees
        // down servers and evicted tasks the same round.
        self.inject_faults();

        // Round statistics.
        self.metrics.rounds += 1;
        let overloaded = self.cluster.overloaded_count(self.cfg.h_r);
        self.metrics.overload_occurrences += overloaded as u64;
        if tracer.is_enabled() && overloaded > 0 {
            for i in 0..self.cluster.server_count() {
                let srv = self.cluster.server(ServerId(i as u32));
                if srv.is_overloaded(self.cfg.h_r) {
                    obs::event!(
                        tracer,
                        Overload {
                            t: self.now.as_mins_f64(),
                            server: i as u32,
                            degree: srv.overload_degree(),
                        }
                    );
                }
            }
        }
        if self.cfg.record_timeline {
            // The index set's cardinality equals the naive scan's
            // count by the `sync_job_sets` invariant.
            let active_jobs = match self.cfg.engine {
                EngineMode::Naive => self.jobs.values().filter(|j| !j.is_finished()).count(),
                EngineMode::EventDriven => self.active.len(),
            };
            self.metrics.timeline.push(metrics::TimelinePoint {
                t_mins: self.now.as_mins_f64(),
                mean_util: self.cluster.mean_utilization().0,
                queue_len: self.queue.len(),
                active_jobs,
                overloaded_servers: overloaded,
            });
        }

        // Reward for the window just closed.
        self.window.mean_active_accuracy = self.mean_active_accuracy();
        let reward = components(&self.window);
        self.window = WindowStats::default();
        scheduler.observe_reward(&reward);

        // Time-varying utilization: refresh every placed task's
        // live demand before the scheduler observes the cluster.
        self.refresh_utilization();

        // Scheduling round (timed).
        let arrived = std::mem::take(&mut self.arrived_this_round);
        let ctx = SchedulerContext {
            now: self.now,
            jobs: &self.jobs,
            cluster: &self.cluster,
            queue: &self.queue,
        };
        // Wall-clock timing of the scheduler call itself, recorded
        // as an observability metric (decision_times_ms); it never
        // influences simulated time or any scheduling decision.
        let started = Instant::now(); // lint:allow(det-wall-clock) reason="measures real decision latency for BENCH_scheduler.json; scheduler-invisible"
        let actions = scheduler.schedule_stream(&ctx, &arrived);
        let elapsed = started.elapsed();
        self.metrics
            .decision_times_ms
            .push(elapsed.as_secs_f64() * 1000.0);
        self.tracer.record_decision_ns(elapsed.as_nanos() as u64);
        let n_actions = actions.len();
        self.apply_actions(actions);
        obs::event!(
            tracer,
            RoundEnd {
                round: self.metrics.rounds,
                t: self.now.as_mins_f64(),
                actions: n_actions as u32,
                decision_ns: elapsed.as_nanos() as u64,
            }
        );

        // Straggler injection happens at round granularity.
        self.inject_stragglers();

        // Pick the next round time.
        let active = match self.cfg.engine {
            EngineMode::Naive => self.jobs.values().any(|j| !j.is_finished()),
            EngineMode::EventDriven => !self.active.is_empty(),
        };
        if !active && self.next_arrival >= self.pending.len() {
            return StepOutcome::Drained;
        }
        let next = if active || !self.queue.is_empty() {
            self.now + self.cfg.tick
        } else {
            // Idle: jump to the next arrival.
            match self.pending.get(self.next_arrival) {
                Some(next_spec) => next_spec.arrival.max(self.now + self.cfg.tick),
                // Unreachable: the drained check above covers it.
                None => self.now + self.cfg.tick,
            }
        };
        if next.since(SimTime::ZERO) > self.cfg.max_time {
            // Horizon reached: advance once more then stop.
            self.advance(self.last, SimTime::ZERO + self.cfg.max_time);
            self.last = SimTime::ZERO + self.cfg.max_time;
            return StepOutcome::Horizon;
        }
        self.now = next;
        StepOutcome::Continue
    }

    /// Run to completion under `scheduler`, returning the metrics.
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> RunMetrics {
        self.begin(scheduler);
        while self.step(scheduler) == StepOutcome::Continue {}
        self.finalize()
    }

    /// Close the run and return the metrics (streaming front-ends
    /// call this once the stream of arrivals ends; the batch
    /// [`Simulation::run`] path does it internally).
    pub fn into_metrics(self) -> RunMetrics {
        self.finalize()
    }

    /// Inject a new arrival into the live simulation (the streaming
    /// front-end's entry point). The spec lands in the sorted pending
    /// list no earlier than the admission cursor, so an arrival time
    /// already in the past is admitted at the next round boundary.
    /// Returns `false` (dropping the spec) on a duplicate job id.
    pub fn inject_job(&mut self, spec: JobSpec) -> bool {
        if self.jobs.contains_key(&spec.id) {
            return false;
        }
        let tail = self.pending.get(self.next_arrival..).unwrap_or_default();
        if tail.iter().any(|s| s.id == spec.id) {
            return false;
        }
        let idx = self.next_arrival + tail.partition_point(|s| s.arrival <= spec.arrival);
        self.pending.insert(idx, spec);
        self.metrics.jobs_submitted += 1;
        true
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The scheduler round period.
    pub fn tick(&self) -> SimDuration {
        self.cfg.tick
    }

    /// Tasks currently waiting in the scheduler queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Injected arrivals not yet admitted into the job set.
    pub fn pending_arrivals(&self) -> usize {
        self.pending.len().saturating_sub(self.next_arrival)
    }

    /// Unfinished jobs currently in the system.
    pub fn active_jobs(&self) -> usize {
        match self.cfg.engine {
            EngineMode::Naive => self.jobs.values().filter(|j| !j.is_finished()).count(),
            EngineMode::EventDriven => self.active.len(),
        }
    }

    /// Scheduling rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// The cluster-wide overload degree `O_c^t` (MLF-C's admission
    /// signal, exposed for service-level load control).
    pub fn cluster_overload_degree(&self) -> f64 {
        self.cluster.cluster_overload_degree()
    }

    /// Serialize the full engine state at a round boundary (between
    /// [`Simulation::step`] calls). Transient intra-window caches —
    /// the rate cache, freed-server list and queue tombstones — are
    /// empty or rebuilt at round boundaries and are deliberately not
    /// captured; [`Simulation::restore`] reconstructs the index sets
    /// and the deadline calendar from the job states.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            now: self.now,
            last: self.last,
            begun: self.begun,
            jobs: self.jobs.iter().map(|(id, j)| (id, j.clone())).collect(),
            queue: self.queue.clone(),
            pending: self
                .pending
                .get(self.next_arrival..)
                .unwrap_or_default()
                .to_vec(),
            metrics: self.metrics.clone(),
            window: self.window.clone(),
            stragglers: self.stragglers.clone(),
            rng: self.rng.state().to_vec(),
            fault_rng: self.fault_rng.state().to_vec(),
            bandwidth_charged_mb: self.bandwidth_charged_mb,
            next_scheduled_fault: self.next_scheduled_fault,
            recoveries: self.recoveries.clone(),
            arrived_this_round: self.arrived_this_round.clone(),
            cluster: self.cluster.snapshot(),
            telemetry_counts: self.tracer.snapshot().counts,
        }
    }

    /// Rebuild a simulation from a [`SimSnapshot`] and the `cfg` the
    /// snapshotted run was started with. Stepping the result produces
    /// bit-identical decisions and metrics to the uninterrupted run
    /// (the crash-restart tests in `crates/service` prove it), except
    /// for wall-clock observability fields accrued before the
    /// snapshot's round (`RunMetrics::clear_wall_clock` strips those).
    pub fn restore(cfg: SimConfig, snap: SimSnapshot) -> Self {
        let mut sim = Simulation::new(cfg, Vec::new());
        sim.cluster.restore(snap.cluster);
        for (id, j) in snap.jobs {
            sim.jobs.insert(id, j);
        }
        sim.queue = snap.queue;
        // The snapshot carries only the unadmitted tail, still sorted.
        sim.pending = snap.pending;
        sim.next_arrival = 0;
        sim.now = snap.now;
        sim.last = snap.last;
        sim.begun = snap.begun;
        sim.metrics = snap.metrics;
        sim.window = snap.window;
        sim.stragglers = snap.stragglers;
        sim.rng = SimRng::from_state(rng_state(&snap.rng));
        sim.fault_rng = SimRng::from_state(rng_state(&snap.fault_rng));
        sim.bandwidth_charged_mb = snap.bandwidth_charged_mb;
        sim.next_scheduled_fault = snap.next_scheduled_fault;
        sim.recoveries = snap.recoveries;
        sim.arrived_this_round = snap.arrived_this_round;
        // Rebuild the active/running index sets from the job states.
        let ids: Vec<JobId> = sim.jobs.iter().map(|(id, _)| id).collect();
        for id in ids {
            sim.sync_job_sets(id);
        }
        // Rebuild the deadline calendar: windows tile time, so every
        // deadline at or before `now` was either frozen when its
        // window passed or is never frozen in either engine (the
        // freeze guard is `d > t`). Only unfrozen future deadlines of
        // active jobs can still fire. Entry order within equal
        // deadlines differs from the original admission-ordered
        // calendar, but the pop handler touches only its own job, so
        // the difference is unobservable.
        if sim.cfg.engine == EngineMode::EventDriven {
            let due: Vec<(SimTime, JobId)> = sim
                .active
                .iter()
                .filter_map(|id| sim.jobs.get(id).map(|j| (*id, j)))
                .filter(|(_, j)| j.accuracy_at_deadline.is_none() && j.spec.deadline > sim.now)
                .map(|(id, j)| (j.spec.deadline, id))
                .collect();
            for (at, id) in due {
                sim.deadline_cal.push(at, id);
            }
        }
        // Reseed the deterministic telemetry counters so the folded
        // counts at `finalize` match the uninterrupted run's.
        for (i, c) in obs::Counter::ALL.iter().enumerate() {
            let n = snap.telemetry_counts.get(i).copied().unwrap_or(0);
            if n > 0 {
                sim.tracer.add(*c, n);
            }
        }
        sim
    }

    /// Mean accuracy over active jobs. Both arms visit unfinished jobs
    /// in ascending id order, so the summation order (and thus the
    /// floating-point result) is identical.
    fn mean_active_accuracy(&self) -> f64 {
        let accs: Vec<f64> = match self.cfg.engine {
            EngineMode::Naive => self
                .jobs
                .values()
                .filter(|j| !j.is_finished())
                .map(|j| j.accuracy())
                .collect(),
            EngineMode::EventDriven => self
                .active
                .iter()
                .filter_map(|id| self.jobs.get(id))
                .map(|j| j.accuracy())
                .collect(),
        };
        metrics::mean(&accs)
    }

    /// Advance the world from `from` to `to`, sub-stepping at arrivals
    /// and completions.
    fn advance(&mut self, from: SimTime, to: SimTime) {
        match self.cfg.engine {
            EngineMode::Naive => self.advance_naive(from, to),
            EngineMode::EventDriven => self.advance_event(from, to),
        }
    }

    /// Reference advancement: every sub-step recomputes every
    /// unfinished job's rate and walks every job slot. Kept verbatim
    /// as the ground truth for the event engine's determinism tests.
    fn advance_naive(&mut self, from: SimTime, to: SimTime) {
        let mut t = from;
        // Admit arrivals at exactly `from` first (e.g. the initial jump).
        self.admit_arrivals(t);
        while t < to {
            // Current rates (with straggler slowdown).
            let rates: BTreeMap<JobId, JobRate> = self
                .jobs
                .iter()
                .filter(|(_, j)| !j.is_finished())
                .map(|(id, j)| {
                    let mut r = job_rate(j, &self.cluster, self.cfg.progress);
                    if let Some(sc) = self.cfg.straggler {
                        let straggling = (0..j.spec.task_count())
                            .any(|i| self.stragglers.contains(&TaskId::new(id, i as u16)));
                        if straggling {
                            r.iters_per_sec *= sc.slowdown;
                        }
                    }
                    (id, r)
                })
                .collect();

            // Earliest event in (t, to]: completion or arrival.
            let mut t_next = to;
            for (id, r) in &rates {
                if r.iters_per_sec <= 0.0 {
                    continue;
                }
                let Some(j) = self.jobs.get(id) else {
                    continue;
                };
                let remaining = j.spec.max_iterations as f64 - j.iterations;
                if remaining <= 0.0 {
                    continue;
                }
                let t_c = t + SimDuration::from_secs_f64(remaining / r.iters_per_sec);
                if t_c < t_next {
                    t_next = t_c;
                }
            }
            if let Some(p) = self.pending.get(self.next_arrival) {
                let a = p.arrival;
                if a > t && a < t_next {
                    t_next = a;
                }
            }
            if t_next <= t {
                t_next = to; // numerical floor: never stall
            }
            let dt = t_next.since(t);
            let dt_secs = dt.as_secs_f64();

            // Apply progress, traffic, waiting and deadline freezes.
            let mut finished_now: Vec<JobId> = Vec::new();
            for (id, j) in self.jobs.iter_mut() {
                if j.is_finished() {
                    continue;
                }
                let r = rates.get(&id).copied().unwrap_or_default();
                // Deadline crossing inside (t, t_next]?
                let d = j.spec.deadline;
                if j.accuracy_at_deadline.is_none() && d > t && d <= t_next {
                    let at = j.iterations + r.iters_per_sec * d.since(t).as_secs_f64();
                    j.accuracy_at_deadline = Some(j.spec.curve.accuracy_at(at));
                }
                // Throughput ledger: GPU time consumed by placed
                // tasks (whether or not the job makes progress).
                let gpu_share: f64 = j
                    .task_states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, TaskRunState::Running { .. }))
                    .filter_map(|(i, _)| j.spec.tasks.get(i).map(|t| t.gpu_share))
                    .sum();
                self.metrics.gpu_hours_total += gpu_share * dt_secs / 3600.0;
                if r.iters_per_sec > 0.0 {
                    let delta = r.iters_per_sec * dt_secs;
                    j.advance(delta);
                    let mb = r.cross_mb_per_iter * delta;
                    self.bandwidth_charged_mb += mb;
                    self.window.transferred_mb += mb;
                    if j.iterations >= j.spec.max_iterations as f64 - 1e-9 {
                        finished_now.push(id);
                    }
                } else if j.running_tasks() == 0 {
                    // Whole job idle: accrue waiting time.
                    j.waiting += dt;
                }
            }
            for id in finished_now {
                self.complete_job(id, t_next, StopReason::MaxIterations);
            }
            t = t_next;
            self.admit_arrivals(t);
        }
    }

    /// One running job's cached rate — straggler slowdown folded in,
    /// exactly as the naive per-sub-step loop computes it — plus its
    /// total placed GPU share.
    fn cached_rate_for(&self, id: JobId) -> Option<CachedRate> {
        let j = self.jobs.get(&id)?;
        let mut r = job_rate(j, &self.cluster, self.cfg.progress);
        if let Some(sc) = self.cfg.straggler {
            let straggling = (0..j.spec.task_count())
                .any(|i| self.stragglers.contains(&TaskId::new(id, i as u16)));
            if straggling {
                r.iters_per_sec *= sc.slowdown;
            }
        }
        let gpu_share: f64 = j
            .task_states
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, TaskRunState::Running { .. }))
            .map(|(i, _)| j.spec.tasks.get(i).map(|t| t.gpu_share).unwrap_or(0.0))
            .sum();
        Some(CachedRate { rate: r, gpu_share })
    }

    /// (Re)build the per-window rate cache over the running set. The
    /// per-job computation is pure, so large sets fan out over
    /// deterministic fork-join cells ([`simcore::par_map`]); results
    /// merge in the running set's id order regardless of thread count.
    fn rebuild_rate_cache(&mut self) {
        let ids: Vec<JobId> = self.running.iter().copied().collect();
        let threads = if ids.len() >= PAR_RATE_THRESHOLD {
            self.sim_threads
        } else {
            1
        };
        let entries = {
            let this: &Simulation = self;
            simcore::par_map(&ids, threads, |_, &id| this.cached_rate_for(id))
        };
        self.rate_cache.clear();
        for (id, e) in ids.iter().zip(entries) {
            if let Some(e) = e {
                self.rate_cache.insert(*id, e);
            }
        }
    }

    /// Event-driven advancement. Observably identical to
    /// [`Self::advance_naive`] (bit-for-bit, including every
    /// floating-point accumulator) but O(running + changes) per
    /// sub-step instead of O(jobs):
    ///
    /// * completion candidates come from the cached rates of the
    ///   running set — `job_rate` reads only placements and per-server
    ///   GPU load, both frozen within a window except where a
    ///   completion frees them;
    /// * deadline crossings pop from a calendar instead of re-checking
    ///   every job;
    /// * idle jobs' `+= 0.0` ledger contributions are skipped (exact
    ///   floating-point identities) and their waiting time accrues in
    ///   one integer-exact batch at window end.
    fn advance_event(&mut self, from: SimTime, to: SimTime) {
        let mut t = from;
        self.admit_arrivals(t);
        self.freed_servers.clear();
        self.rebuild_rate_cache();
        while t < to {
            // Earliest event in (t, to]: completion or arrival.
            let mut t_next = to;
            for (id, c) in &self.rate_cache {
                if c.rate.iters_per_sec <= 0.0 {
                    continue;
                }
                let Some(j) = self.jobs.get(id) else { continue };
                let remaining = j.spec.max_iterations as f64 - j.iterations;
                if remaining <= 0.0 {
                    continue;
                }
                let t_c = t + SimDuration::from_secs_f64(remaining / c.rate.iters_per_sec);
                if t_c < t_next {
                    t_next = t_c;
                }
            }
            if let Some(a) = self.pending.get(self.next_arrival).map(|s| s.arrival) {
                if a > t && a < t_next {
                    t_next = a;
                }
            }
            if t_next <= t {
                t_next = to; // numerical floor: never stall
            }
            let dt_secs = t_next.since(t).as_secs_f64();

            // Deadline crossings in (t, t_next]: freeze by-deadline
            // accuracy from the job's *pre-advance* iterations, as the
            // naive per-job pass does. Idle jobs project with rate 0.
            while self
                .deadline_cal
                .peek_time()
                .map(|at| at <= t_next)
                .unwrap_or(false)
            {
                let Some(entry) = self.deadline_cal.pop() else {
                    break;
                };
                let id = entry.event;
                let r = self
                    .rate_cache
                    .get(&id)
                    .map(|c| c.rate.iters_per_sec)
                    .unwrap_or(0.0);
                if let Some(j) = self.jobs.get_mut(&id) {
                    let d = j.spec.deadline;
                    if j.accuracy_at_deadline.is_none() && d > t && d <= t_next {
                        let at = j.iterations + r * d.since(t).as_secs_f64();
                        j.accuracy_at_deadline = Some(j.spec.curve.accuracy_at(at));
                    }
                }
            }

            // Progress, GPU-hour and traffic accrual over the running
            // set, ascending id — the order the naive loop visits
            // these jobs in (idle jobs contribute exact no-ops there).
            let mut finished_now: Vec<JobId> = Vec::new();
            let steps: Vec<(JobId, CachedRate)> =
                self.rate_cache.iter().map(|(&id, &c)| (id, c)).collect();
            for (id, c) in steps {
                self.metrics.gpu_hours_total += c.gpu_share * dt_secs / 3600.0;
                if c.rate.iters_per_sec > 0.0 {
                    let Some(j) = self.jobs.get_mut(&id) else {
                        continue;
                    };
                    let delta = c.rate.iters_per_sec * dt_secs;
                    j.advance(delta);
                    let mb = c.rate.cross_mb_per_iter * delta;
                    self.bandwidth_charged_mb += mb;
                    self.window.transferred_mb += mb;
                    if j.iterations >= j.spec.max_iterations as f64 - 1e-9 {
                        finished_now.push(id);
                    }
                }
            }
            for id in finished_now {
                self.complete_job(id, t_next, StopReason::MaxIterations);
            }
            // Mid-window completions freed GPU share on their servers;
            // only jobs co-located there can have changed rates
            // (`job_rate` reads nothing else that moved), so refresh
            // exactly those cache entries.
            if !self.freed_servers.is_empty() {
                let freed = std::mem::take(&mut self.freed_servers);
                let mut stale: BTreeSet<JobId> = BTreeSet::new();
                for sid in freed {
                    for (task, _) in self.cluster.server(sid).tasks() {
                        stale.insert(task.job);
                    }
                }
                for id in stale {
                    if self.running.contains(&id) {
                        if let Some(c) = self.cached_rate_for(id) {
                            self.rate_cache.insert(id, c);
                        }
                    }
                }
            }
            t = t_next;
            self.admit_arrivals(t);
        }
        // Batched waiting time: an idle job stays idle for the whole
        // rest of the window (placements and evictions only happen
        // between rounds, and a job with no running task cannot
        // finish mid-window), so the naive loop's per-sub-step
        // `waiting += dt` telescopes to one exact integer-millisecond
        // sum from the later of window start and the job's arrival.
        let idle: Vec<JobId> = self
            .active
            .iter()
            .filter(|id| !self.running.contains(id))
            .copied()
            .collect();
        for id in idle {
            if let Some(j) = self.jobs.get_mut(&id) {
                let start = from.max(j.spec.arrival);
                if to > start {
                    j.waiting += to.since(start);
                }
            }
        }
    }

    /// Admit every pending job with `arrival ≤ t`.
    fn admit_arrivals(&mut self, t: SimTime) {
        while let Some(next) = self.pending.get(self.next_arrival) {
            if next.arrival > t {
                break;
            }
            let spec = next.clone();
            self.next_arrival += 1;
            let id = spec.id;
            let state = JobState::new(spec, t);
            for i in 0..state.spec.task_count() {
                self.queue.push(TaskId::new(id, i as u16));
            }
            assert!(!self.jobs.contains_key(&id), "duplicate job id {id}");
            if self.cfg.engine == EngineMode::EventDriven && state.spec.deadline > t {
                // Future deadline: schedule the crossing. A deadline
                // at or before admission is never frozen by `advance`
                // in either mode (the naive guard is `d > t`).
                self.deadline_cal.push(state.spec.deadline, id);
            }
            self.jobs.insert(id, state);
            // Fresh jobs are active and idle (all tasks queued).
            self.active.insert(id);
            self.arrived_this_round.push(id);
        }
    }

    /// Finish a job: free resources, purge the queue, record metrics.
    fn complete_job(&mut self, id: JobId, at: SimTime, reason: StopReason) {
        // An unknown or already-finished job makes completion a no-op.
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.is_finished() {
            return;
        }
        // Free placed tasks.
        let had_waiting = job.waiting_tasks() > 0;
        for (i, st) in job.task_states.clone().iter().enumerate() {
            if let TaskRunState::Running { server, .. } = st {
                let t = TaskId::new(id, i as u16);
                self.cluster.remove(t);
                self.stragglers.remove(&t);
                if self.cfg.engine == EngineMode::EventDriven {
                    // Remember where capacity was freed so a mid-window
                    // completion can invalidate co-located cached rates.
                    self.freed_servers.push(*server);
                }
            }
        }
        if had_waiting {
            // Only purge the queue when the job actually had waiting
            // tasks — `retain` over an entry-free queue is a no-op,
            // and most completing jobs are fully placed.
            self.queue.retain(|t| t.job != id);
        }
        job.finish(at, reason);
        // By-deadline accuracy freezes at completion if the deadline
        // is still ahead (the job's final accuracy counts).
        job.freeze_deadline_accuracy(at.max(job.spec.deadline));
        // Window bookkeeping for the reward.
        let jct_mins = job.jct().map(|d| d.as_mins_f64()).unwrap_or(0.0);
        self.window.completed_jct_mins.push(jct_mins);
        if job.met_deadline() {
            self.window.completed_met_deadline += 1;
        }
        if job.met_accuracy() {
            self.window.completed_met_accuracy += 1;
        }
        self.sync_job_sets(id);
    }

    /// Validate and apply a round's actions.
    fn apply_actions(&mut self, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Place { task, server } => {
                    let valid = self
                        .jobs
                        .get(&task.job)
                        .map(|j| {
                            !j.is_finished()
                                && matches!(
                                    j.task_states.get(task.idx as usize),
                                    Some(TaskRunState::Waiting { .. })
                                )
                        })
                        .unwrap_or(false)
                        && (server.0 as usize) < self.cluster.server_count();
                    if !valid {
                        self.metrics.invalid_actions += 1;
                        continue;
                    }
                    let (demand, gpu_share) = match self
                        .jobs
                        .get(&task.job)
                        .and_then(|j| j.spec.tasks.get(task.idx as usize))
                    {
                        Some(spec) => (spec.demand, spec.gpu_share),
                        None => {
                            self.metrics.invalid_actions += 1;
                            continue;
                        }
                    };
                    match self.cluster.place(task, server, demand, gpu_share) {
                        Ok(gpu) => {
                            self.tracer.add(obs::Counter::Placements, 1);
                            if let Some(st) = self
                                .jobs
                                .get_mut(&task.job)
                                .and_then(|j| j.task_states.get_mut(task.idx as usize))
                            {
                                *st = TaskRunState::Running { server, gpu };
                            }
                            match self.cfg.engine {
                                EngineMode::Naive => self.queue.retain(|t| *t != task),
                                // Batch the O(queue) purges: a round
                                // of k placements costs one pass
                                // instead of k. `retain` is order-
                                // preserving either way, so the
                                // surviving queue is identical.
                                EngineMode::EventDriven => {
                                    self.queue_tombstones.insert(task);
                                }
                            }
                            self.sync_job_sets(task.job);
                        }
                        Err(_) => self.metrics.invalid_actions += 1,
                    }
                }
                Action::Migrate { task, to } => {
                    let running = self
                        .jobs
                        .get(&task.job)
                        .map(|j| {
                            !j.is_finished()
                                && matches!(
                                    j.task_states.get(task.idx as usize),
                                    Some(TaskRunState::Running { .. })
                                )
                        })
                        .unwrap_or(false)
                        && (to.0 as usize) < self.cluster.server_count();
                    if !running {
                        self.metrics.invalid_actions += 1;
                        continue;
                    }
                    let state_mb = match self.jobs.get(&task.job) {
                        Some(job) => migration_state_mb(job, task.idx as usize),
                        None => {
                            self.metrics.invalid_actions += 1;
                            continue;
                        }
                    };
                    let was_remote = self.cluster.locate(task) != Some(to);
                    match self.cluster.migrate(task, to, state_mb) {
                        Ok(gpu) => {
                            self.tracer.add(obs::Counter::Migrations, 1);
                            if let Some(st) = self
                                .jobs
                                .get_mut(&task.job)
                                .and_then(|j| j.task_states.get_mut(task.idx as usize))
                            {
                                *st = TaskRunState::Running { server: to, gpu };
                            }
                            self.stragglers.remove(&task);
                            if was_remote {
                                self.window.transferred_mb += state_mb;
                            }
                        }
                        Err(_) => self.metrics.invalid_actions += 1,
                    }
                }
                Action::Evict { task } => {
                    let running = self
                        .jobs
                        .get(&task.job)
                        .map(|j| {
                            !j.is_finished()
                                && matches!(
                                    j.task_states.get(task.idx as usize),
                                    Some(TaskRunState::Running { .. })
                                )
                        })
                        .unwrap_or(false);
                    if !running {
                        self.metrics.invalid_actions += 1;
                        continue;
                    }
                    self.tracer.add(obs::Counter::Evictions, 1);
                    self.tracer.add(obs::Counter::Requeues, 1);
                    if self.tracer.is_enabled() {
                        let sid = self.cluster.locate(task).map(|s| s.0).unwrap_or(u32::MAX);
                        let t_mins = self.now.as_mins_f64();
                        obs::event!(
                            self.tracer,
                            Eviction {
                                t: t_mins,
                                job: task.job.0,
                                task: task.idx as u32,
                                server: sid,
                            }
                        );
                        obs::event!(
                            self.tracer,
                            Requeue {
                                t: t_mins,
                                job: task.job.0,
                                task: task.idx as u32,
                                reason: "evicted",
                            }
                        );
                    }
                    // Settle pending tombstones first: if this very
                    // task was placed earlier this round its stale
                    // queue entry must be gone *before* the re-push,
                    // exactly as the naive per-placement purge leaves
                    // the queue.
                    self.flush_queue_tombstones();
                    self.cluster.remove(task);
                    self.stragglers.remove(&task);
                    if let Some(st) = self
                        .jobs
                        .get_mut(&task.job)
                        .and_then(|j| j.task_states.get_mut(task.idx as usize))
                    {
                        *st = TaskRunState::Waiting { since: self.now };
                    }
                    self.queue.push(task);
                    self.sync_job_sets(task.job);
                }
                Action::StopJob { job, reason } => {
                    let active = self
                        .jobs
                        .get(&job)
                        .map(|j| !j.is_finished())
                        .unwrap_or(false);
                    if !active {
                        self.metrics.invalid_actions += 1;
                        continue;
                    }
                    obs::event!(
                        self.tracer,
                        JobStopped {
                            t: self.now.as_mins_f64(),
                            job: job.0,
                            reason: stop_reason_label(reason),
                        }
                    );
                    // `complete_job` purges the queue by job id; the
                    // queue must be physically settled first.
                    self.flush_queue_tombstones();
                    self.complete_job(job, self.now, reason);
                }
                Action::SetPolicy { job, policy } => match self.jobs.get_mut(&job) {
                    Some(j) if !j.is_finished() => j.effective_policy = policy,
                    _ => self.metrics.invalid_actions += 1,
                },
            }
        }
        self.flush_queue_tombstones();
    }

    /// Apply the batched `Place` queue removals (event engine). One
    /// order-preserving O(queue) pass replaces the naive engine's
    /// per-placement `retain`; each tombstoned task occurs at most
    /// once in the queue, so the surviving vector is identical.
    fn flush_queue_tombstones(&mut self) {
        if self.queue_tombstones.is_empty() {
            return;
        }
        let tombs = std::mem::take(&mut self.queue_tombstones);
        self.queue.retain(|t| !tombs.contains(t));
    }

    /// Oscillate each placed task's live demand around its mean with a
    /// deterministic per-task phase/period (utilization noise). The
    /// mean demand is still what admission control reasons about.
    fn refresh_utilization(&mut self) {
        let amp = self.cfg.utilization_noise;
        if amp <= 0.0 {
            return;
        }
        let t_mins = self.now.as_mins_f64();
        let per_job = |id: JobId, j: &JobState| {
            j.task_states
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, TaskRunState::Running { .. }))
                .filter_map(|(i, _)| {
                    let spec = j.spec.tasks.get(i)?;
                    let task = TaskId::new(id, i as u16);
                    // Deterministic per-task oscillation: hash the
                    // id into a phase and a 20–60 min period.
                    let h = (id.0 as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64 * 0x0010_0000_01B3);
                    let phase = (h % 1000) as f64 / 1000.0;
                    let period = 20.0 + (h / 1000 % 41) as f64;
                    let factor =
                        1.0 + amp * (2.0 * std::f64::consts::PI * (t_mins / period + phase)).sin();
                    Some((
                        task,
                        spec.demand * factor,
                        (spec.gpu_share * factor).min(1.0),
                    ))
                })
                .collect::<Vec<_>>()
        };
        // Only jobs holding a `Running` task contribute updates, so
        // the running set walks the exact same (job, task) sequence
        // the naive full scan produces.
        let updates: Vec<(TaskId, cluster::ResourceVec, f64)> = match self.cfg.engine {
            EngineMode::Naive => self
                .jobs
                .iter()
                .filter(|(_, j)| !j.is_finished())
                .flat_map(|(id, j)| per_job(id, j))
                .collect(),
            EngineMode::EventDriven => self
                .running
                .iter()
                .filter_map(|id| self.jobs.get(id).map(|j| (*id, j)))
                .flat_map(|(id, j)| per_job(id, j))
                .collect(),
        };
        for (task, demand, gpu_share) in updates {
            self.cluster.update_demand(task, demand, gpu_share);
        }
    }

    /// Round-granularity fault injection: bring due servers back up,
    /// then fire scheduled and random crashes.
    fn inject_faults(&mut self) {
        let Some(fc) = self.cfg.fault.clone() else {
            return;
        };
        // Recoveries due at or before now (sorted ascending).
        while let Some(&(when, sid)) = self.recoveries.first() {
            if when > self.now {
                break;
            }
            self.recoveries.remove(0);
            self.cluster.recover_server(sid);
            obs::event!(
                self.tracer,
                ServerRecovery {
                    t: self.now.as_mins_f64(),
                    server: sid.0,
                }
            );
            self.metrics.fault_events.push(FaultRecord {
                t_mins: self.now.as_mins_f64(),
                server: sid.0,
                crash: false,
                evicted: 0,
            });
        }
        // Trace-driven crashes due this round.
        while let Some(&ev) = fc.schedule.get(self.next_scheduled_fault) {
            if ev.at > self.now {
                break;
            }
            self.next_scheduled_fault += 1;
            self.crash_server(ev.server, self.now + ev.down_for, fc.checkpoint_iters);
        }
        // Memoryless random crash process over the up servers.
        if fc.mtbf_hours > 0.0 {
            let p = self.cfg.tick.as_hours_f64() / fc.mtbf_hours;
            for i in 0..self.cluster.server_count() {
                let sid = ServerId(i as u32);
                if self.cluster.server(sid).is_up() && self.fault_rng.chance(p) {
                    let down_hours = if fc.mttr_hours > 0.0 {
                        self.fault_rng.exponential(1.0 / fc.mttr_hours)
                    } else {
                        self.cfg.tick.as_hours_f64()
                    };
                    let down_for =
                        SimDuration::from_secs_f64(down_hours * 3600.0).max(self.cfg.tick);
                    self.crash_server(sid, self.now + down_for, fc.checkpoint_iters);
                }
            }
        }
    }

    /// Crash one server: evict its tasks back to the queue, roll each
    /// affected job to its last checkpoint (charging the lost GPU
    /// time), and suspend jobs whose surviving tasks can no longer
    /// make progress (a broken gang holds resources without
    /// producing anything).
    fn crash_server(&mut self, sid: ServerId, until: SimTime, checkpoint_iters: u64) {
        if !self.cluster.server(sid).is_up() {
            return; // already down or draining; nothing to crash
        }
        let evicted = self.cluster.fail_server(sid, Some(until));
        self.metrics.server_failures += 1;
        obs::event!(
            self.tracer,
            ServerCrash {
                t: self.now.as_mins_f64(),
                server: sid.0,
                evicted: evicted.len() as u32,
            }
        );
        self.metrics.fault_events.push(FaultRecord {
            t_mins: self.now.as_mins_f64(),
            server: sid.0,
            crash: true,
            evicted: evicted.len(),
        });
        let pos = self
            .recoveries
            .partition_point(|&(w, s)| (w, s.0) <= (until, sid.0));
        self.recoveries.insert(pos, (until, sid));

        let mut affected: Vec<JobId> = Vec::new();
        for (t, _) in &evicted {
            let Some(job) = self.jobs.get_mut(&t.job) else {
                continue;
            };
            debug_assert!(!job.is_finished(), "finished job still placed");
            if let Some(st) = job.task_states.get_mut(t.idx as usize) {
                *st = TaskRunState::Waiting { since: self.now };
            }
            self.queue.push(*t);
            self.stragglers.remove(t);
            self.tracer.add(obs::Counter::Requeues, 1);
            obs::event!(
                self.tracer,
                Requeue {
                    t: self.now.as_mins_f64(),
                    job: t.job.0,
                    task: t.idx as u32,
                    reason: "crash",
                }
            );
            self.metrics.task_restarts += 1;
            if !affected.contains(&t.job) {
                affected.push(t.job);
            }
        }
        let interval = checkpoint_iters.max(1) as f64;
        for id in affected {
            // Checkpoint rollback: progress past the last multiple of
            // the checkpoint interval is destroyed and its GPU time
            // (at the job's ideal per-iteration rate, over all its
            // tasks' GPU shares) is charged as lost.
            let Some(job) = self.jobs.get_mut(&id) else {
                continue;
            };
            let floor = (job.iterations / interval).floor() * interval;
            let lost_iters = job.iterations - floor;
            if lost_iters > 0.0 {
                job.rollback_to(floor);
                let total_share: f64 = job.spec.tasks.iter().map(|t| t.gpu_share).sum();
                let per_iter_hours = job.spec.ideal_runtime(1).as_secs_f64() / 3600.0;
                self.metrics.lost_gpu_hours += lost_iters * per_iter_hours * total_share;
            }
            // Gang suspension: if the survivors make zero progress
            // (e.g. a worker of an all-reduce gang died), release
            // them to the queue so the scheduler can re-place the
            // gang atomically instead of letting it stall in place.
            let Some(job) = self.jobs.get(&id) else {
                continue;
            };
            if job.running_tasks() > 0
                && job_rate(job, &self.cluster, self.cfg.progress).iters_per_sec <= 0.0
            {
                let suspend: Vec<TaskId> = job
                    .task_states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, TaskRunState::Running { .. }))
                    .map(|(i, _)| TaskId::new(id, i as u16))
                    .collect();
                for t in suspend {
                    self.cluster.remove(t);
                    self.stragglers.remove(&t);
                    if let Some(st) = self
                        .jobs
                        .get_mut(&id)
                        .and_then(|j| j.task_states.get_mut(t.idx as usize))
                    {
                        *st = TaskRunState::Waiting { since: self.now };
                    }
                    self.queue.push(t);
                    self.tracer.add(obs::Counter::Requeues, 1);
                    obs::event!(
                        self.tracer,
                        Requeue {
                            t: self.now.as_mins_f64(),
                            job: t.job.0,
                            task: t.idx as u32,
                            reason: "crash",
                        }
                    );
                }
            }
            self.sync_job_sets(id);
        }
    }

    /// Round-granularity straggler injection.
    fn inject_stragglers(&mut self) {
        let Some(sc) = self.cfg.straggler else { return };
        let p = sc.probability_per_hour * self.cfg.tick.as_hours_f64();
        // Replication resolves last round's stragglers (replica takes
        // over; one state transfer each).
        if sc.replicate {
            let resolved: Vec<TaskId> = self.stragglers.iter().copied().collect();
            for t in resolved {
                if let Some(j) = self.jobs.get(&t.job) {
                    let mb = migration_state_mb(j, t.idx as usize);
                    self.bandwidth_charged_mb += mb;
                    self.window.transferred_mb += mb;
                }
                self.stragglers.remove(&t);
            }
        }
        // Same (job, task) sampling sequence either way: only jobs in
        // the running set own `Running` tasks, so the RNG stream is
        // consumed identically in both modes.
        let per_job = |id: JobId, j: &JobState| {
            j.task_states
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, TaskRunState::Running { .. }))
                .map(|(i, _)| TaskId::new(id, i as u16))
                .collect::<Vec<_>>()
        };
        let running: Vec<TaskId> = match self.cfg.engine {
            EngineMode::Naive => self
                .jobs
                .iter()
                .filter(|(_, j)| !j.is_finished())
                .flat_map(|(id, j)| per_job(id, j))
                .collect(),
            EngineMode::EventDriven => self
                .running
                .iter()
                .filter_map(|id| self.jobs.get(id).map(|j| (*id, j)))
                .flat_map(|(id, j)| per_job(id, j))
                .collect(),
        };
        for t in running {
            if !self.stragglers.contains(&t) && self.rng.chance(p) {
                self.stragglers.insert(t);
            }
        }
    }

    /// Close the run: record every job and the cluster ledgers.
    fn finalize(mut self) -> RunMetrics {
        let mut first_arrival = SimTime::MAX;
        let mut last_completion = SimTime::ZERO;
        for (_, job) in self.jobs.iter_mut() {
            // Freeze any remaining deadline accuracies at end state.
            job.freeze_deadline_accuracy(self.now.max(job.spec.deadline));
            first_arrival = first_arrival.min(job.spec.arrival);
            if let Some(f) = job.finished {
                last_completion = last_completion.max(f);
            }
            self.metrics.jobs.push(JobRecord {
                job: job.spec.id.0,
                arrival: job.spec.arrival,
                finished: job.finished,
                deadline: job.spec.deadline,
                jct_mins: job.jct().map(|d| d.as_mins_f64()),
                waiting_secs: job.waiting.as_secs_f64(),
                accuracy_by_deadline: job.accuracy_by_deadline(),
                required_accuracy: job.spec.required_accuracy,
                urgency: job.spec.urgency,
                met_deadline: job.met_deadline(),
                met_accuracy: job.met_accuracy(),
            });
        }
        if first_arrival == SimTime::MAX {
            first_arrival = SimTime::ZERO;
        }
        self.metrics.makespan_hours = last_completion.since(first_arrival).as_hours_f64();
        // Conservation check: every task still on the cluster must
        // belong to an unfinished job.
        self.metrics.leaked_tasks = self
            .cluster
            .servers()
            .iter()
            .flat_map(|s| s.tasks().map(|(t, _)| *t))
            .filter(|t| {
                self.jobs
                    .get(&t.job)
                    .map(|j| j.is_finished())
                    .unwrap_or(true)
            })
            .count();
        self.metrics.bandwidth_mb = self.cluster.transferred_mb() + self.bandwidth_charged_mb;
        self.metrics.migration_mb = self.cluster.migration_mb();
        self.metrics.migrations = self.cluster.migrations();
        // Fold the obs-layer counters into the metrics. The counters
        // are identical whether or not a sink is attached; only the
        // histogram carries wall-clock values (and is stripped by
        // `RunMetrics::clear_wall_clock` for determinism checks).
        let snap = self.tracer.snapshot();
        self.metrics.telemetry = metrics::RoundTelemetry {
            candidates_scored: snap.count(obs::Counter::CandidatesScored),
            placements: snap.count(obs::Counter::Placements),
            migrations: snap.count(obs::Counter::Migrations),
            evictions: snap.count(obs::Counter::Evictions),
            requeues: snap.count(obs::Counter::Requeues),
            blacklist_strikes: snap.count(obs::Counter::BlacklistStrikes),
            decision_ns_histogram: snap.decision_ns.clone(),
        };
        self.tracer.flush();
        self.metrics
    }
}

/// Closed-set label for a [`StopReason`] in `JobStopped` events (see
/// `obs::intern_reason`).
fn stop_reason_label(reason: StopReason) -> &'static str {
    match reason {
        StopReason::MaxIterations => "budget",
        StopReason::OptStop => "policy",
        StopReason::RequiredAccuracy => "accuracy",
        StopReason::PredictedUnreachable => "other",
    }
}

/// Run `specs` under `scheduler` with `cfg`, recording the scheduler's
/// legend name.
pub fn run(cfg: SimConfig, specs: Vec<JobSpec>, scheduler: &mut dyn Scheduler) -> RunMetrics {
    let sim = Simulation::new(cfg, specs);
    let mut m = sim.run(scheduler);
    m.scheduler = scheduler.name().to_string();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlfs::Params;
    use workload::{TraceConfig, TraceGenerator};

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            cluster: ClusterConfig {
                servers: 4,
                gpus_per_server: 4,
                gpu_capacity: 1.0,
                cpu_cores: 32.0,
                memory_gb: 244.0,
                nic_mbps: 1250.0,
                topology: cluster::Topology::default_flat(),
            },
            max_time: SimDuration::from_hours(24 * 14),
            ..Default::default()
        }
    }

    fn tiny_trace(jobs: f64, seed: u64) -> Vec<JobSpec> {
        TraceGenerator::new(TraceConfig {
            jobs: jobs as usize,
            span: SimDuration::from_hours(2),
            duration_median_mins: 10.0,
            duration_sigma: 0.8,
            time_factor: 1.0,
            gpu_choices: vec![(1, 0.5), (2, 0.3), (4, 0.2)],
            algorithm_weights: [0.2; 5],
            param_server_prob: 0.5,
            previously_run_prob: 0.7,
            stop_policy: workload::StopPolicy::OptStop,
            deadline_slack_hours: (0.5, 4.0),
            seed,
        })
        .generate()
    }

    #[test]
    fn mlfh_completes_a_small_trace() {
        let specs = tiny_trace(30.0, 1);
        let mut sched = mlfs::Mlfs::heuristic(Params::default());
        let m = run(tiny_cfg(), specs, &mut sched);
        assert_eq!(m.scheduler, "MLF-H");
        assert_eq!(m.jobs_submitted, 30);
        assert_eq!(m.jobs.len(), 30);
        let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
        assert!(finished >= 28, "only {finished}/30 finished");
        assert_eq!(m.invalid_actions, 0, "scheduler emitted invalid actions");
        assert!(m.avg_jct_mins() > 0.0);
        assert!(m.makespan_hours > 0.0);
        assert!(m.bandwidth_mb > 0.0, "jobs must move bytes");
        assert!(!m.decision_times_ms.is_empty());
    }

    #[test]
    fn fifo_also_completes_and_runs_are_deterministic() {
        let specs = tiny_trace(20.0, 2);
        let m1 = run(tiny_cfg(), specs.clone(), &mut baselines::Fifo::new());
        let m2 = run(tiny_cfg(), specs, &mut baselines::Fifo::new());
        assert_eq!(m1.avg_jct_mins(), m2.avg_jct_mins());
        assert_eq!(m1.bandwidth_mb, m2.bandwidth_mb);
        assert_eq!(m1.invalid_actions, 0);
        let finished = m1.jobs.iter().filter(|j| j.finished.is_some()).count();
        assert!(finished >= 18, "{finished}/20");
    }

    #[test]
    fn jct_never_less_than_ideal_runtime() {
        let specs = tiny_trace(15.0, 3);
        let ideal: BTreeMap<u32, f64> = specs
            .iter()
            .map(|s| (s.id.0, s.ideal_runtime(s.max_iterations).as_mins_f64()))
            .collect();
        let m = run(
            tiny_cfg(),
            specs,
            &mut mlfs::Mlfs::heuristic(Params::default()),
        );
        for j in &m.jobs {
            if let Some(jct) = j.jct_mins {
                // Fluid model can only be slower than the ideal
                // communication-free run.
                assert!(
                    jct >= ideal[&j.job] * 0.999,
                    "job {}: jct {jct} < ideal {}",
                    j.job,
                    ideal[&j.job]
                );
            }
        }
    }

    #[test]
    fn overloaded_cluster_queues_and_still_finishes_some() {
        // 1 tiny server, many jobs.
        let cfg = SimConfig {
            cluster: ClusterConfig {
                servers: 1,
                gpus_per_server: 2,
                gpu_capacity: 1.0,
                cpu_cores: 16.0,
                memory_gb: 64.0,
                nic_mbps: 1000.0,
                topology: cluster::Topology::default_flat(),
            },
            max_time: SimDuration::from_hours(48),
            ..Default::default()
        };
        let specs = tiny_trace(25.0, 4);
        let m = run(cfg, specs, &mut mlfs::Mlfs::heuristic(Params::default()));
        let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
        assert!(finished > 0);
        // Contention must show up as waiting time.
        assert!(m.avg_waiting_secs() > 0.0);
    }

    #[test]
    fn mlfs_full_pipeline_runs_with_rl_and_mlfc() {
        let specs = tiny_trace(25.0, 5);
        let mut sched = mlfs::Mlfs::full(
            Params::default(),
            mlfs::MlfRlConfig {
                imitation_rounds: 10,
                train_interval: 4,
                seed: 9,
                ..Default::default()
            },
        );
        let m = run(tiny_cfg(), specs, &mut sched);
        assert_eq!(m.scheduler, "MLFS");
        let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
        assert!(finished >= 20, "{finished}/25");
    }

    #[test]
    fn idle_gaps_are_skipped_not_ticked() {
        // Two short jobs three simulated days apart: the engine must
        // jump the gap instead of grinding ~4300 one-minute rounds.
        let mut specs = tiny_trace(2.0, 8);
        specs[0].arrival = simcore::SimTime::ZERO;
        specs[1].arrival = simcore::SimTime::from_hours(72);
        let mut cfg = tiny_cfg();
        cfg.max_time = SimDuration::from_hours(24 * 30);
        let m = run(cfg, specs, &mut mlfs::Mlfs::heuristic(Params::default()));
        let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
        assert_eq!(finished, 2);
        assert!(
            m.rounds < 1000,
            "engine ticked through the idle gap: {} rounds",
            m.rounds
        );
    }

    #[test]
    fn utilization_noise_changes_dynamics_deterministically() {
        let specs = tiny_trace(15.0, 9);
        let mk = |noise: f64| {
            let mut cfg = tiny_cfg();
            cfg.utilization_noise = noise;
            run(
                cfg,
                specs.clone(),
                &mut mlfs::Mlfs::heuristic(Params::default()),
            )
        };
        let a = mk(0.0);
        let b = mk(0.3);
        let b2 = mk(0.3);
        // Same noise level twice = identical (deterministic).
        assert_eq!(b.avg_jct_mins(), b2.avg_jct_mins());
        assert_eq!(b.migrations, b2.migrations);
        // Noise perturbs the run relative to the noiseless baseline.
        assert!(
            (a.avg_jct_mins() - b.avg_jct_mins()).abs() > 1e-9
                || a.migrations != b.migrations
                || a.bandwidth_mb != b.bandwidth_mb,
            "noise had no observable effect"
        );
    }

    #[test]
    fn stragglers_slow_jobs_down() {
        let specs = tiny_trace(12.0, 6);
        let base = run(
            tiny_cfg(),
            specs.clone(),
            &mut mlfs::Mlfs::heuristic(Params::default()),
        );
        let mut cfg = tiny_cfg();
        cfg.straggler = Some(StragglerConfig {
            probability_per_hour: 5.0,
            slowdown: 0.2,
            replicate: false,
        });
        let slowed = run(cfg, specs, &mut mlfs::Mlfs::heuristic(Params::default()));
        assert!(
            slowed.avg_jct_mins() > base.avg_jct_mins(),
            "stragglers: {} vs {}",
            slowed.avg_jct_mins(),
            base.avg_jct_mins()
        );
    }

    #[test]
    fn replicated_straggler_resolves_next_round_with_one_transfer() {
        // Deterministic micro-check of `StragglerConfig::replicate`:
        // a straggling task keeps its slowdown for the round it was
        // marked in, the replica takes over at the *next* injection
        // round, and exactly one state transfer is charged for it.
        let mut cfg = tiny_cfg();
        cfg.straggler = Some(StragglerConfig {
            probability_per_hour: 0.0, // no new stragglers: isolate resolution
            slowdown: 0.2,
            replicate: true,
        });
        let specs = tiny_trace(1.0, 7);
        let spec = specs[0].clone();
        let jid = spec.id;
        let task = TaskId::new(jid, 0);
        let mut sim = Simulation::new(cfg, specs);
        let tspec = spec.tasks[0].clone();
        let gpu = sim
            .cluster
            .place(task, ServerId(0), tspec.demand, tspec.gpu_share)
            .unwrap();
        let mut job = JobState::new(spec, SimTime::ZERO);
        job.task_states[0] = TaskRunState::Running {
            server: ServerId(0),
            gpu,
        };
        sim.jobs.insert(jid, job);
        sim.stragglers.insert(task);

        sim.inject_stragglers();
        let expected = migration_state_mb(&sim.jobs[&jid], 0);
        assert!(expected > 0.0);
        assert!(
            sim.stragglers.is_empty(),
            "replica must take over at the next round"
        );
        assert!(
            (sim.bandwidth_charged_mb - expected).abs() < 1e-9,
            "exactly one state transfer: charged {} vs {}",
            sim.bandwidth_charged_mb,
            expected
        );

        // Resolved stragglers stay resolved: no further transfers.
        sim.inject_stragglers();
        assert!((sim.bandwidth_charged_mb - expected).abs() < 1e-9);
    }

    #[test]
    fn scheduled_crash_evicts_restarts_and_recovers() {
        let specs = tiny_trace(12.0, 6);
        let mut cfg = tiny_cfg();
        cfg.fault = Some(FaultConfig {
            mtbf_hours: 0.0, // trace-driven only
            mttr_hours: 0.0,
            schedule: vec![
                FaultEvent {
                    at: SimTime::from_mins(30),
                    server: ServerId(0),
                    down_for: SimDuration::from_mins(45),
                },
                FaultEvent {
                    at: SimTime::from_mins(60),
                    server: ServerId(1),
                    down_for: SimDuration::from_mins(20),
                },
            ],
            checkpoint_iters: 50,
        });
        let m = run(cfg, specs, &mut mlfs::Mlfs::heuristic(Params::default()));
        assert_eq!(m.server_failures, 2);
        assert!(m.task_restarts > 0, "crashes must evict running tasks");
        assert!(m.lost_gpu_hours > 0.0, "rollback must charge lost work");
        assert!(m.gpu_hours_total > 0.0);
        assert!(m.goodput_ratio() < 1.0 && m.goodput_ratio() > 0.0);
        // Both crash and recovery events are recorded.
        assert_eq!(m.fault_events.iter().filter(|e| e.crash).count(), 2);
        assert_eq!(m.fault_events.iter().filter(|e| !e.crash).count(), 2);
        assert_eq!(m.leaked_tasks, 0);
        // Every evicted task either restarted and ran to completion or
        // its job terminated with a recorded outcome.
        assert_eq!(m.jobs.len(), 12);
        let finished = m.jobs.iter().filter(|j| j.finished.is_some()).count();
        assert!(finished >= 10, "{finished}/12 finished");
    }

    #[test]
    fn random_faults_are_deterministic_and_survivable() {
        let specs = tiny_trace(12.0, 6);
        let mk = || {
            let mut cfg = tiny_cfg();
            cfg.fault = Some(FaultConfig {
                mtbf_hours: 1.0, // very flaky: ~4 crashes/hour cluster-wide
                mttr_hours: 0.25,
                schedule: Vec::new(),
                checkpoint_iters: 20,
            });
            run(
                cfg,
                specs.clone(),
                &mut mlfs::Mlfs::heuristic(Params::default()),
            )
        };
        let a = mk();
        let b = mk();
        assert!(a.server_failures > 0);
        assert!(a.task_restarts > 0);
        assert_eq!(a.leaked_tasks, 0);
        assert_eq!(a.server_failures, b.server_failures);
        assert_eq!(a.task_restarts, b.task_restarts);
        assert_eq!(a.avg_jct_mins(), b.avg_jct_mins());
        assert_eq!(a.lost_gpu_hours, b.lost_gpu_hours);
    }

    #[test]
    fn faults_do_not_perturb_fault_free_runs() {
        // `fault: None` and a zero-rate FaultConfig take the same
        // code path outcomes: identical metrics, zero fault counters.
        let specs = tiny_trace(10.0, 11);
        let base = run(
            tiny_cfg(),
            specs.clone(),
            &mut mlfs::Mlfs::heuristic(Params::default()),
        );
        let mut cfg = tiny_cfg();
        cfg.fault = Some(FaultConfig {
            mtbf_hours: 0.0,
            mttr_hours: 0.0,
            schedule: Vec::new(),
            checkpoint_iters: 100,
        });
        let inert = run(cfg, specs, &mut mlfs::Mlfs::heuristic(Params::default()));
        assert_eq!(base.server_failures, 0);
        assert_eq!(base.task_restarts, 0);
        assert_eq!(base.lost_gpu_hours, 0.0);
        assert!(base.fault_events.is_empty());
        assert_eq!(base.goodput_ratio(), 1.0);
        assert_eq!(base.avg_jct_mins(), inert.avg_jct_mins());
        assert_eq!(base.bandwidth_mb, inert.bandwidth_mb);
        assert_eq!(base.gpu_hours_total, inert.gpu_hours_total);
    }

    /// Serialized metrics minus the wall-clock observability fields —
    /// the byte string two bit-identical runs must agree on.
    fn fingerprint(mut m: RunMetrics) -> String {
        m.clear_wall_clock();
        serde_json::to_string(&m).unwrap()
    }

    /// Run `specs` under MLF-H with both engines, returning the two
    /// fingerprints.
    fn run_both_engines(base: SimConfig, specs: Vec<JobSpec>) -> (String, String) {
        let mk = |engine: EngineMode| {
            let mut cfg = base.clone();
            cfg.engine = engine;
            fingerprint(run(
                cfg,
                specs.clone(),
                &mut mlfs::Mlfs::heuristic(Params::default()),
            ))
        };
        (mk(EngineMode::Naive), mk(EngineMode::EventDriven))
    }

    #[test]
    fn event_engine_matches_naive_bit_for_bit() {
        // Timeline on: the per-round counters (active jobs, queue
        // length, utilization) must agree round by round, not just in
        // the final aggregates.
        let mut cfg = tiny_cfg();
        cfg.record_timeline = true;
        let (naive, event) = run_both_engines(cfg, tiny_trace(30.0, 1));
        assert_eq!(naive, event);
    }

    #[test]
    fn event_engine_matches_naive_on_overloaded_cluster() {
        // Persistent queues exercise the tombstoned queue purge, the
        // lazy waiting accrual, and deadline freezes on idle jobs.
        let cfg = SimConfig {
            cluster: ClusterConfig {
                servers: 1,
                gpus_per_server: 2,
                gpu_capacity: 1.0,
                cpu_cores: 16.0,
                memory_gb: 64.0,
                nic_mbps: 1000.0,
                topology: cluster::Topology::default_flat(),
            },
            max_time: SimDuration::from_hours(48),
            ..Default::default()
        };
        let (naive, event) = run_both_engines(cfg, tiny_trace(25.0, 4));
        assert_eq!(naive, event);
    }

    #[test]
    fn event_engine_matches_naive_under_stragglers() {
        for replicate in [false, true] {
            let mut cfg = tiny_cfg();
            cfg.straggler = Some(StragglerConfig {
                probability_per_hour: 5.0,
                slowdown: 0.2,
                replicate,
            });
            let (naive, event) = run_both_engines(cfg, tiny_trace(12.0, 6));
            assert_eq!(naive, event, "replicate={replicate}");
        }
    }

    #[test]
    fn event_engine_matches_naive_under_faults() {
        let mut cfg = tiny_cfg();
        cfg.fault = Some(FaultConfig {
            mtbf_hours: 1.0,
            mttr_hours: 0.25,
            schedule: vec![FaultEvent {
                at: SimTime::from_mins(30),
                server: ServerId(0),
                down_for: SimDuration::from_mins(45),
            }],
            checkpoint_iters: 20,
        });
        let (naive, event) = run_both_engines(cfg, tiny_trace(12.0, 6));
        assert_eq!(naive, event);
    }

    #[test]
    fn rate_pass_is_thread_count_invariant() {
        // Enough concurrent jobs to push the running set past
        // PAR_RATE_THRESHOLD, so the fork-join path actually runs.
        let cfg = SimConfig {
            cluster: ClusterConfig {
                servers: 40,
                gpus_per_server: 4,
                gpu_capacity: 1.0,
                cpu_cores: 32.0,
                memory_gb: 244.0,
                nic_mbps: 1250.0,
                topology: cluster::Topology::default_flat(),
            },
            max_time: SimDuration::from_hours(24 * 14),
            ..Default::default()
        };
        let specs = TraceGenerator::new(TraceConfig {
            jobs: 150,
            span: SimDuration::from_hours(1),
            duration_median_mins: 30.0,
            duration_sigma: 0.8,
            time_factor: 1.0,
            gpu_choices: vec![(1, 0.5), (2, 0.3), (4, 0.2)],
            algorithm_weights: [0.2; 5],
            param_server_prob: 0.5,
            previously_run_prob: 0.7,
            stop_policy: workload::StopPolicy::OptStop,
            deadline_slack_hours: (0.5, 4.0),
            seed: 13,
        })
        .generate();
        let mk = |threads: usize| {
            let mut sim = Simulation::new(cfg.clone(), specs.clone());
            sim.sim_threads = threads;
            let mut sched = mlfs::Mlfs::heuristic(Params::default());
            fingerprint(sim.run(&mut sched))
        };
        let serial = mk(1);
        for threads in [2, 5] {
            assert_eq!(serial, mk(threads), "threads={threads}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig {
            cases: 12,
            ..proptest::ProptestConfig::default()
        })]

        /// Randomized equivalence: for any small workload — with or
        /// without straggler and fault injection — the event engine
        /// reproduces the naive engine bit for bit.
        #[test]
        fn event_engine_matches_naive_randomized(
            jobs in 2u32..16,
            seed in 0u64..1000,
            use_straggler in proptest::any::<bool>(),
            p in 0.5f64..8.0,
            slow in 0.1f64..0.9,
            replicate in proptest::any::<bool>(),
            use_fault in proptest::any::<bool>(),
            mtbf in 0.5f64..4.0,
            mttr in 0.0f64..0.5,
            ckpt in 1u64..60,
        ) {
            let mut cfg = tiny_cfg();
            cfg.max_time = SimDuration::from_hours(48);
            if use_straggler {
                cfg.straggler = Some(StragglerConfig {
                    probability_per_hour: p,
                    slowdown: slow,
                    replicate,
                });
            }
            if use_fault {
                cfg.fault = Some(FaultConfig {
                    mtbf_hours: mtbf,
                    mttr_hours: mttr,
                    schedule: Vec::new(),
                    checkpoint_iters: ckpt,
                });
            }
            let (naive, event) = run_both_engines(cfg, tiny_trace(jobs as f64, seed));
            proptest::prop_assert_eq!(naive, event);
        }
    }

    #[test]
    fn replication_mitigates_stragglers() {
        let specs = tiny_trace(12.0, 6);
        let mk = |replicate| {
            let mut cfg = tiny_cfg();
            cfg.straggler = Some(StragglerConfig {
                probability_per_hour: 5.0,
                slowdown: 0.2,
                replicate,
            });
            run(
                cfg,
                specs.clone(),
                &mut mlfs::Mlfs::heuristic(Params::default()),
            )
        };
        let without = mk(false);
        let with = mk(true);
        assert!(
            with.avg_jct_mins() < without.avg_jct_mins(),
            "replication: {} vs {}",
            with.avg_jct_mins(),
            without.avg_jct_mins()
        );
    }
}
