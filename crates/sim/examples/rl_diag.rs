//! Developer diagnostic: MLF-RL training quality — imitation
//! agreement after a warm-up run and eval JCT vs plain MLF-H.
//!
//! ```sh
//! cargo run --release -p mlfs-sim --example rl_diag
//! ```

use mlfs::{MlfRlConfig, Mlfs, Params};
use mlfs_sim::experiments::fig4;

fn main() {
    let e = fig4(0.25, 16.0, 42);
    let rounds = e.expected_rounds();
    let mut eval_exp = e.clone();
    eval_exp.trace.seed = 999;

    let m_h = eval_exp.run(&mut Mlfs::heuristic(Params::default()));
    println!(
        "MLF-H eval: JCT {:.1} d {:.3}",
        m_h.avg_jct_mins(),
        m_h.deadline_ratio()
    );

    for (label, imit) in [
        ("imitation-only", rounds + 10),
        ("imit+RL (half)", rounds / 2),
    ] {
        let cfg = MlfRlConfig {
            imitation_rounds: imit,
            explore: true,
            seed: 7,
            ..Default::default()
        };
        let mut warm = Mlfs::rl(Params::default(), cfg.clone());
        e.run(&mut warm);
        let agree = warm.rl_mut().unwrap().imitation_agreement();
        let pol = warm.rl_mut().unwrap().export_policy();
        println!("{label}: imitation agreement {:.3}", agree);
        let mut ev = Mlfs::rl(Params::default(), cfg);
        {
            let r = ev.rl_mut().unwrap();
            r.import_policy(pol);
            r.set_explore(false);
        }
        let m = eval_exp.run(&mut ev);
        println!(
            "{label}: JCT {:.1} d {:.3}",
            m.avg_jct_mins(),
            m.deadline_ratio()
        );
    }
}
