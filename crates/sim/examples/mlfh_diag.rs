//! Developer diagnostic: one MLF-H run at a given workload multiple
//! (and optional h_r), printing the headline metrics on one line.
//!
//! ```sh
//! cargo run --release -p mlfs-sim --example mlfh_diag -- 2 [0.9]
//! ```

use mlfs::{Mlfs, Params};
use mlfs_sim::experiments::fig4;

fn main() {
    let x: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let h_r: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.9);
    let e = fig4(x, 16.0, 42);
    let t0 = std::time::Instant::now();
    let m = e.run(&mut Mlfs::heuristic(Params {
        h_r,
        h_s: h_r,
        ..Params::default()
    }));
    println!(
        "MLF-H x={}: JCT {:.1} d {:.3} acc {:.3} bw {:.1}TB wait {:.0}s mig {} ({:.1}s wall)",
        x,
        m.avg_jct_mins(),
        m.deadline_ratio(),
        m.avg_accuracy(),
        m.bandwidth_tb(),
        m.avg_waiting_secs(),
        m.migrations,
        t0.elapsed().as_secs_f64()
    );
}
