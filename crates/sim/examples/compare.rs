//! Developer diagnostic: run all ten figure schedulers on one
//! fig4-style workload and print a compact comparison table.
//!
//! ```sh
//! cargo run --release -p mlfs-sim --example compare -- [x] [tf]
//! ```
use mlfs_sim::experiments::fig4;

fn main() {
    let x: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let tf: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16.0);
    let e = fig4(x, tf, 42);
    println!(
        "{} jobs, {} rounds expected",
        e.trace.jobs,
        e.expected_rounds()
    );
    println!(
        "{:<12} {:>8} {:>7} {:>7} {:>8} {:>7} {:>7} {:>9} {:>7} {:>6}",
        "scheduler",
        "avgJCT",
        "d-rat",
        "a-rat",
        "wait(s)",
        "acc",
        "bw(GB)",
        "mkspan(h)",
        "ms",
        "unfin"
    );
    for name in baselines::FIGURE_SCHEDULERS {
        let mut s = e.trained_scheduler(name, 7);
        let t0 = std::time::Instant::now();
        let m = e.run(s.as_mut());
        let unfin = m.jobs.iter().filter(|j| j.finished.is_none()).count();
        println!("{:<12} {:>8.1} {:>7.3} {:>7.3} {:>8.1} {:>7.3} {:>7.1} {:>9.1} {:>7.3} {:>6} ({:.1}s wall, {} inval)",
            name, m.avg_jct_mins(), m.deadline_ratio(), m.accuracy_ratio(),
            m.avg_waiting_secs(), m.avg_accuracy(), m.bandwidth_mb/1024.0,
            m.makespan_hours, m.avg_decision_ms(), unfin, t0.elapsed().as_secs_f64(), m.invalid_actions);
    }
}
