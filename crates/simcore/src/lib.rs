//! # simcore — deterministic discrete-event simulation engine
//!
//! Foundation for the MLFS cluster simulator. Provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-millisecond time types with
//!   saturating arithmetic, so event ordering is exact and runs are
//!   bit-for-bit reproducible across platforms.
//! * [`EventQueue`] — a stable priority queue of timestamped events.
//!   Events with equal timestamps pop in insertion order, which keeps
//!   the simulation deterministic even when many events share a tick.
//! * [`SimRng`] — a small, seedable xorshift RNG used everywhere the
//!   simulator needs randomness. We deliberately avoid `thread_rng` so
//!   that every experiment is reproducible from its seed.
//! * [`Clock`] — the simulation clock, advanced only by the engine.
//! * [`forkjoin`] — deterministic fork-join parallelism: pure maps over
//!   index-ordered cells, merged in fixed order so the output is
//!   bit-identical for every thread count.
//!
//! The engine itself is generic over the event payload; the `sim` crate
//! instantiates it with cluster events (arrivals, ticks, completions).

// Panic-freedom is machine-checked twice: crate-wide here (clippy,
// non-test code only) and structurally by `cargo run -p mlfs-lint`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod forkjoin;
pub mod queue;
pub mod rng;
pub mod time;

pub use forkjoin::{par_map, sim_threads};
pub use queue::{EventEntry, EventQueue};
pub use rng::SimRng;
pub use time::{Clock, SimDuration, SimTime};
