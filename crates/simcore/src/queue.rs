//! Stable timestamped event queue.
//!
//! A thin wrapper over `BinaryHeap` that breaks timestamp ties by
//! insertion sequence number, so simultaneous events pop in the order
//! they were scheduled. This is what makes the whole simulation
//! deterministic: a plain heap would pop equal-time events in an
//! arbitrary (allocation-dependent) order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: a payload due at `at`.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number assigned at push time; breaks ties.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then the
        // first-inserted) entry is "greatest".
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of timestamped events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { at, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        self.heap.pop()
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(50), ());
        q.push(SimTime(5), ());
        assert_eq!(q.peek_time(), Some(SimTime(5)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), 1);
        q.push(SimTime(2), 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping must always yield non-decreasing timestamps, and
        /// within one timestamp, increasing sequence numbers.
        #[test]
        fn pop_order_is_total(times in proptest::collection::vec(0u64..1000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime(*t), i);
            }
            let mut last: Option<(SimTime, u64)> = None;
            while let Some(e) = q.pop() {
                if let Some((lt, ls)) = last {
                    prop_assert!(e.at >= lt);
                    if e.at == lt {
                        prop_assert!(e.seq > ls);
                    }
                }
                last = Some((e.at, e.seq));
            }
        }

        /// The queue returns exactly the multiset of events pushed.
        #[test]
        fn conservation(times in proptest::collection::vec(0u64..100, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime(*t), i);
            }
            let mut seen: Vec<usize> = Vec::new();
            while let Some(e) = q.pop() {
                seen.push(e.event);
            }
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
