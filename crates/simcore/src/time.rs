//! Simulation time types.
//!
//! All simulation time is measured in integer **milliseconds** from the
//! start of the run. Integer time keeps the event queue totally ordered
//! without floating-point ties and makes runs reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in milliseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Construct from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000)
    }

    /// Construct from whole hours.
    pub fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000)
    }

    /// Milliseconds since simulation start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Fractional minutes since simulation start.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Fractional hours since simulation start.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as "unbounded".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Construct from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Construct from whole hours.
    pub fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let ms = (secs * 1000.0).round();
        if ms >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ms as u64)
        }
    }

    /// Milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// True when the duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative scalar, saturating. NaN clamps to zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k.max(0.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// The simulation clock. Only the event loop should advance it, and time
/// never moves backwards.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance to `t`.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time — that would mean
    /// the event queue handed events out of order, which is a bug.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "clock moved backwards: {} -> {}",
            self.now,
            t
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimTime::from_mins(2).as_millis(), 120_000);
        assert_eq!(SimTime::from_hours(1).as_millis(), 3_600_000);
        assert_eq!(SimDuration::from_secs(5).as_secs_f64(), 5.0);
    }

    #[test]
    fn duration_from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration(10), SimTime::MAX);
        let d = SimDuration(5);
        assert_eq!(d - SimDuration(10), SimDuration::ZERO);
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimTime(10).since(SimTime(4)), SimDuration(6));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime(100));
        c.advance_to(SimTime(100));
        c.advance_to(SimTime(250));
        assert_eq!(c.now(), SimTime(250));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_rejects_backwards() {
        let mut c = Clock::new();
        c.advance_to(SimTime(100));
        c.advance_to(SimTime(99));
    }

    #[test]
    fn mul_f64_behaviour() {
        assert_eq!(SimDuration::from_secs(10).mul_f64(0.5).as_millis(), 5000);
        assert_eq!(SimDuration::from_secs(10).mul_f64(-2.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(f64::NAN),
            SimDuration::ZERO
        );
    }
}
