//! Deterministic fork-join parallelism for intra-run phases.
//!
//! The engine (and the bench harness) occasionally has a *pure* map to
//! evaluate over many independent items — per-job progress rates, per-
//! configuration simulation runs. This module runs such maps on a small
//! worker pool while keeping the output **bit-identical for every
//! thread count**:
//!
//! * items are partitioned into contiguous *cells* (a few per worker)
//!   in index order;
//! * workers claim cells from a shared atomic counter (so scheduling is
//!   racy and fast) but write each cell's results into that cell's own
//!   slot (so results never interleave);
//! * the caller concatenates the slots in fixed cell order.
//!
//! As long as the mapped function is pure, the merged output is the
//! same `Vec` the serial loop would have produced — OS scheduling only
//! changes *when* a cell is computed, never *what* or *where*. The
//! `sim` crate's thread-invariance test exercises exactly this
//! property end to end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for intra-run parallel phases: `MLFS_SIM_THREADS` when
/// set (floored at 1), otherwise the machine's available parallelism.
/// Reading the environment is determinism-safe here because
/// [`par_map`] produces thread-count-invariant output.
pub fn sim_threads() -> usize {
    match std::env::var("MLFS_SIM_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Map `f` over `items` on up to `threads` workers, returning results
/// in item order regardless of thread count or OS scheduling. `f`
/// receives each item's index alongside the item. Serial fallback when
/// `threads <= 1` or there is at most one item.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    // A few cells per worker keeps the tail balanced without making
    // the per-cell bookkeeping dominate.
    let cells = (workers * 4).min(items.len());
    let chunk = items.len().div_ceil(cells);
    let slots: Vec<Mutex<Vec<R>>> = (0..cells).map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= cells {
                    break;
                }
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(items.len());
                let out: Vec<R> = items
                    .get(lo..hi)
                    .unwrap_or(&[])
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(lo + i, t))
                    .collect();
                if let Some(slot) = slots.get(c) {
                    if let Ok(mut guard) = slot.lock() {
                        *guard = out;
                    }
                }
            });
        }
    });
    let mut merged = Vec::with_capacity(items.len());
    for slot in slots {
        match slot.into_inner() {
            Ok(v) => merged.extend(v),
            Err(poisoned) => merged.extend(poisoned.into_inner()),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map(&items, 1, |i, x| (i as u64) * 31 + x * x);
        for threads in [2, 3, 8, 64] {
            let par = par_map(&items, threads, |i, x| (i as u64) * 31 + x * x);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, 8, |_, x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |i, x| x + i as u32), vec![7]);
    }

    #[test]
    fn indices_are_global() {
        let items: Vec<u32> = (0..257).collect();
        let out = par_map(&items, 4, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn sim_threads_is_at_least_one() {
        assert!(sim_threads() >= 1);
    }
}
