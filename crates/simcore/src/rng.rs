//! Deterministic, seedable RNG for simulation.
//!
//! A `xoshiro256**`-style generator wrapped behind convenience sampling
//! methods. We intentionally do not use `rand::thread_rng` anywhere in
//! the simulator: every experiment must be reproducible from its seed,
//! and the bench harness relies on that to compare schedulers on
//! *identical* workloads.

use rand::{Error, RngCore, SeedableRng};

/// A small, fast, seedable PRNG (xoshiro256** core).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed. Two different seeds give independent
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive a child RNG from this one, labelled by `stream`.
    /// Used to give each job / component its own stream so that adding
    /// randomness in one place does not perturb another.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the current state with the stream id through splitmix.
        let mut seed = self
            .s
            .iter()
            .fold(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15), |a, &b| {
                a.rotate_left(17) ^ b
            });
        SimRng::new(splitmix64(&mut seed))
    }

    /// Export the raw xoshiro256** state (snapshot support). Feeding
    /// it back through [`SimRng::from_state`] resumes the stream at
    /// exactly this point.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously exported state.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in [lo, hi). Returns `lo` when the range is empty.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.f64() * (hi - lo)
    }

    /// Uniform u64 in [lo, hi). Panics when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Rejection-free modulo is fine here: ranges are tiny compared
        // with 2^64, the bias is negligible for simulation purposes.
        lo + self.next() % (hi - lo)
    }

    /// Uniform usize in [0, n). Panics when n == 0.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        (self.next() % n as u64) as usize
    }

    /// Pick a uniformly random element of `items`.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Bernoulli trial with success probability `p` (clamped to \[0,1\]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_ms(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Exponential sample with the given rate (events per unit).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -self.f64().max(f64::MIN_POSITIVE).ln() / rate
    }

    /// Log-normal sample parameterised by the underlying normal's
    /// mean `mu` and std `sigma`. Heavy-tailed: used for job durations.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Bounded Pareto sample on \[lo, hi\] with shape `alpha`.
    /// Used for heavy-tailed job sizes in the trace generator.
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let x = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let y = r.range_u64(10, 20);
            assert!((10..20).contains(&y));
        }
        assert_eq!(r.range_f64(5.0, 5.0), 5.0);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(17);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_pareto_in_bounds() {
        let mut r = SimRng::new(19);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(1.0, 100.0, 1.2);
            assert!((1.0..=100.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn fork_streams_are_independent_of_parent_use() {
        // Forking with the same label from an untouched parent gives the
        // same child stream.
        let parent = SimRng::new(42);
        let mut c1 = parent.fork(9);
        let mut c2 = parent.fork(9);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Different labels give different streams.
        let mut d = parent.fork(10);
        let same = (0..100)
            .filter(|_| parent.clone().fork(9).next_u64() == d.next_u64())
            .count();
        assert!(same < 3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut w = v.clone();
        w.sort_unstable();
        assert_eq!(w, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(29);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(5.0));
    }
}
